//! Throughput and latency metrics.
//!
//! The paper's evaluation reports *generation throughput* — generated tokens
//! divided by total time (prefill + decode) — per batch ([`BatchRunReport`]).
//! Request-level serving additionally tracks per-request latency
//! ([`RequestLatency`]): time to first token, average per-token time and
//! completion time, summarized as percentiles ([`LatencySummary`]).

use crate::spec::Request;
use moe_hardware::Seconds;
use serde::{Deserialize, Serialize};

/// Outcome of running (or simulating) one batch of requests. `Default` is the
/// all-zero report, the identity of [`BatchRunReport::combine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchRunReport {
    /// Number of requests in the batch.
    pub requests: u64,
    /// Prompt tokens processed during prefill.
    pub prompt_tokens: u64,
    /// Tokens generated during decode.
    pub generated_tokens: u64,
    /// Time spent in the prefill stage.
    pub prefill_time: Seconds,
    /// Time spent in the decode stage.
    pub decode_time: Seconds,
    /// Sum over requests of each request's mean per-token decode latency — the
    /// accumulator behind the request-weighted [`Self::per_token_latency`], which
    /// stays correct under [`Self::combine`] even when rounds have different
    /// request counts (dividing the combined decode time by the *global* mean
    /// tokens-per-request does not).
    pub per_token_sum: Seconds,
}

impl BatchRunReport {
    /// Builds the report of one uniform round: every request decodes
    /// `generated_tokens / requests` tokens in lock-step over `decode_time`, so
    /// each request's mean per-token latency is `decode_time · requests /
    /// generated_tokens`.
    pub fn uniform_round(
        requests: u64,
        prompt_tokens: u64,
        generated_tokens: u64,
        prefill_time: Seconds,
        decode_time: Seconds,
    ) -> Self {
        let per_token_sum = if generated_tokens == 0 {
            Seconds::ZERO
        } else {
            decode_time.scale(requests as f64 * requests as f64 / generated_tokens as f64)
        };
        BatchRunReport {
            requests,
            prompt_tokens,
            generated_tokens,
            prefill_time,
            decode_time,
            per_token_sum,
        }
    }
    /// Total wall-clock time.
    pub fn total_time(&self) -> Seconds {
        self.prefill_time + self.decode_time
    }

    /// Generation throughput in tokens/s (the paper's headline metric):
    /// generated tokens / (prefill time + decode time).
    pub fn generation_throughput(&self) -> f64 {
        let t = self.total_time().as_secs();
        if t <= 0.0 {
            return 0.0;
        }
        self.generated_tokens as f64 / t
    }

    /// Decode-only throughput in tokens/s.
    pub fn decode_throughput(&self) -> f64 {
        let t = self.decode_time.as_secs();
        if t <= 0.0 {
            return 0.0;
        }
        self.generated_tokens as f64 / t
    }

    /// Average latency per generated token per request (seconds/token), as the
    /// request-weighted mean of each request's own per-token latency.
    ///
    /// Reports built by [`Self::uniform_round`] (or with an explicit
    /// [`Self::per_token_sum`]) keep this exact across [`Self::combine`]; a report
    /// assembled by hand with a zero accumulator falls back to the single-round
    /// formula `decode_time / (generated_tokens / requests)`.
    pub fn per_token_latency(&self) -> Seconds {
        if self.requests == 0 {
            return Seconds::ZERO;
        }
        if self.per_token_sum > Seconds::ZERO {
            return self.per_token_sum.scale(1.0 / self.requests as f64);
        }
        if self.generated_tokens == 0 {
            return Seconds::ZERO;
        }
        Seconds::from_secs(
            self.decode_time.as_secs() / (self.generated_tokens as f64 / self.requests as f64),
        )
    }

    /// Combines two reports (e.g. successive batches of one long run).
    pub fn combine(&self, other: &BatchRunReport) -> BatchRunReport {
        BatchRunReport {
            requests: self.requests + other.requests,
            prompt_tokens: self.prompt_tokens + other.prompt_tokens,
            generated_tokens: self.generated_tokens + other.generated_tokens,
            prefill_time: self.prefill_time + other.prefill_time,
            decode_time: self.decode_time + other.decode_time,
            per_token_sum: self.per_token_sum + other.per_token_sum,
        }
    }
}

/// Per-request latency record produced by the serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestLatency {
    /// The request this record describes.
    pub request: Request,
    /// Zero-based index of the serving round (round-to-completion mode) or
    /// admission wave (continuous mode) the request was admitted in.
    pub round: usize,
    /// Time from the request's *arrival* to its first generated token — the
    /// queue-aware TTFT: it includes waiting behind earlier work plus the
    /// admitting round's prefill and first decode step.
    pub ttft: Seconds,
    /// Average latency of one generated token once decoding has started
    /// (including any mid-flight prefill stalls from later admission waves).
    pub per_token: Seconds,
    /// Time from the request's arrival to its last generated token.
    pub completion_time: Seconds,
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Seconds,
    /// 50th percentile (median).
    pub p50: Seconds,
    /// 90th percentile.
    pub p90: Seconds,
    /// 99th percentile.
    pub p99: Seconds,
    /// Largest sample.
    pub max: Seconds,
}

impl LatencySummary {
    /// Summarizes `samples` (percentiles by nearest-rank; all-zero for an empty
    /// slice).
    pub fn from_samples(samples: &[Seconds]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean: Seconds::ZERO,
                p50: Seconds::ZERO,
                p90: Seconds::ZERO,
                p99: Seconds::ZERO,
                max: Seconds::ZERO,
            };
        }
        let mut sorted: Vec<f64> = samples.iter().map(|s| s.as_secs()).collect();
        sorted.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            Seconds::from_secs(sorted[rank.clamp(1, sorted.len()) - 1])
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        LatencySummary {
            count: sorted.len(),
            mean: Seconds::from_secs(mean),
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
            max: Seconds::from_secs(*sorted.last().expect("non-empty")),
        }
    }

    /// Summarizes the time-to-first-token of `latencies`.
    pub fn ttft(latencies: &[RequestLatency]) -> Self {
        Self::from_samples(&latencies.iter().map(|l| l.ttft).collect::<Vec<_>>())
    }

    /// Summarizes the average per-token latency of `latencies`.
    pub fn per_token(latencies: &[RequestLatency]) -> Self {
        Self::from_samples(&latencies.iter().map(|l| l.per_token).collect::<Vec<_>>())
    }

    /// Summarizes the completion time of `latencies`.
    pub fn completion(latencies: &[RequestLatency]) -> Self {
        Self::from_samples(
            &latencies
                .iter()
                .map(|l| l.completion_time)
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BatchRunReport {
        BatchRunReport::uniform_round(
            500,
            500 * 77,
            500 * 128,
            Seconds::from_secs(100.0),
            Seconds::from_secs(1900.0),
        )
    }

    #[test]
    fn generation_throughput_divides_by_total_time() {
        let r = report();
        assert!((r.generation_throughput() - 32.0).abs() < 1e-9);
        assert!((r.decode_throughput() - 64000.0 / 1900.0).abs() < 1e-9);
        assert!(r.decode_throughput() > r.generation_throughput());
    }

    #[test]
    fn per_token_latency_accounts_for_batching() {
        let r = report();
        // 128 tokens per request over 1900 s => ~14.8 s per token per request.
        assert!((r.per_token_latency().as_secs() - 1900.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let zero = BatchRunReport::default();
        assert_eq!(zero.generation_throughput(), 0.0);
        assert_eq!(zero.decode_throughput(), 0.0);
        assert_eq!(zero.per_token_latency(), Seconds::ZERO);
        let no_tokens = BatchRunReport {
            requests: 4,
            ..BatchRunReport::default()
        };
        assert_eq!(no_tokens.per_token_latency(), Seconds::ZERO);
    }

    #[test]
    fn per_token_latency_is_request_weighted_after_combine() {
        // Round A: 2 requests × 32 tokens over 64 s of decode → 2 s/token each.
        // Round B: 1 request × 128 tokens over 128 s of decode → 1 s/token.
        // The request-weighted mean is (2·2 + 1·1)/3 = 5/3 s/token; dividing the
        // combined decode time by the global mean tokens-per-request (the old
        // formula) gives 192/(192/3) = 3 s/token, overstating it by 80%.
        let a = BatchRunReport::uniform_round(2, 0, 64, Seconds::ZERO, Seconds::from_secs(64.0));
        let b = BatchRunReport::uniform_round(1, 0, 128, Seconds::ZERO, Seconds::from_secs(128.0));
        assert!((a.per_token_latency().as_secs() - 2.0).abs() < 1e-9);
        assert!((b.per_token_latency().as_secs() - 1.0).abs() < 1e-9);
        let combined = a.combine(&b);
        assert!(
            (combined.per_token_latency().as_secs() - 5.0 / 3.0).abs() < 1e-9,
            "combined per-token latency must be the request-weighted mean, got {}",
            combined.per_token_latency()
        );
        // Combining in the other order gives the same answer.
        assert_eq!(
            b.combine(&a).per_token_latency(),
            combined.per_token_latency()
        );
    }

    #[test]
    fn combine_adds_all_fields() {
        let r = report();
        let double = r.combine(&r);
        assert_eq!(double.requests, 1000);
        assert_eq!(double.generated_tokens, 128_000);
        assert!((double.total_time().as_secs() - 4000.0).abs() < 1e-9);
        assert!((double.generation_throughput() - r.generation_throughput()).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_percentiles_use_nearest_rank() {
        let samples: Vec<Seconds> = (1..=100)
            .map(|i| Seconds::from_secs(f64::from(i)))
            .collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.p50.as_secs() - 50.0).abs() < 1e-9);
        assert!((s.p90.as_secs() - 90.0).abs() < 1e-9);
        assert!((s.p99.as_secs() - 99.0).abs() < 1e-9);
        assert!((s.max.as_secs() - 100.0).abs() < 1e-9);
        assert!((s.mean.as_secs() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_of_empty_slice_is_zero() {
        let s = LatencySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, Seconds::ZERO);
        assert_eq!(s.p99, Seconds::ZERO);
    }

    #[test]
    fn latency_summary_selectors_pick_the_right_field() {
        let req = Request::new(0, 10, 4);
        let latencies = [
            RequestLatency {
                request: req,
                round: 0,
                ttft: Seconds::from_secs(1.0),
                per_token: Seconds::from_secs(0.5),
                completion_time: Seconds::from_secs(3.0),
            },
            RequestLatency {
                request: Request { id: 1, ..req },
                round: 1,
                ttft: Seconds::from_secs(3.0),
                per_token: Seconds::from_secs(0.7),
                completion_time: Seconds::from_secs(5.0),
            },
        ];
        assert!((LatencySummary::ttft(&latencies).mean.as_secs() - 2.0).abs() < 1e-9);
        assert!((LatencySummary::per_token(&latencies).mean.as_secs() - 0.6).abs() < 1e-9);
        assert!((LatencySummary::completion(&latencies).max.as_secs() - 5.0).abs() < 1e-9);
    }
}
