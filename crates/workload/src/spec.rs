//! Workload specifications and synthetic request generation.
//!
//! The paper evaluates three workloads (Tab. 3): MTBench (replicated to thousands of
//! requests), HELM synthetic reasoning and HELM summarization (CNN/DailyMail). Only
//! the prompt-length statistics matter for throughput, so each workload is described
//! by its average and maximum prompt length and requests are sampled from a
//! truncated distribution matching those statistics.
//!
//! For online serving, every [`Request`] additionally carries an arrival time
//! stamped by an [`ArrivalProcess`] (all-at-once, Poisson, or bursty), so the
//! serving scheduler is exercised under load instead of a pre-filled queue and
//! latency metrics are measured from each request's arrival (queue-aware TTFT).

use moe_hardware::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The service-level-objective class a request is judged (and, in later
/// scheduling work, prioritized) under. Trace files carry the class per
/// request; reports can break SLO attainment down by class.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum SloClass {
    /// Latency-critical interactive traffic (chat front-ends).
    Interactive,
    /// The default tier for unclassified traffic.
    #[default]
    Standard,
    /// Throughput-oriented background traffic (batch pipelines, evals).
    Batch,
}

impl SloClass {
    /// Every class, in a stable order (the per-class report/array order).
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Stable short label, also the on-disk trace-format token.
    pub fn label(&self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Parses a [`Self::label`] back into the class.
    pub fn from_label(label: &str) -> Option<SloClass> {
        SloClass::ALL.into_iter().find(|c| c.label() == label)
    }

    /// The class's position in [`Self::ALL`] (for per-class accumulators).
    pub fn index(&self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single inference request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within a generated batch.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Number of tokens to generate.
    pub gen_len: u64,
    /// Time the request entered the serving queue (zero for offline batches).
    pub arrival: Seconds,
    /// The session (conversation) this request belongs to. Defaults to the
    /// request's own id — the one-shot case; multi-turn traffic shares one
    /// session id across turns (the sticky-routing axis of ROADMAP item 3).
    pub session_id: u64,
    /// The SLO class the request is judged under (defaults to
    /// [`SloClass::Standard`]).
    pub slo_class: SloClass,
}

impl Request {
    /// A request arriving at time zero (the offline, pre-filled-queue case),
    /// in its own one-shot session, under the standard SLO class.
    pub fn new(id: u64, input_len: u64, gen_len: u64) -> Self {
        Request {
            id,
            input_len,
            gen_len,
            arrival: Seconds::ZERO,
            session_id: id,
            slo_class: SloClass::Standard,
        }
    }

    /// Assigns the request to a multi-turn session (builder style).
    pub fn with_session(mut self, session_id: u64) -> Self {
        self.session_id = session_id;
        self
    }

    /// Sets the request's SLO class (builder style).
    pub fn with_slo_class(mut self, slo_class: SloClass) -> Self {
        self.slo_class = slo_class;
        self
    }

    /// Total context length once generation finishes.
    pub fn max_context(&self) -> u64 {
        self.input_len + self.gen_len
    }
}

/// How requests arrive at the serving queue over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Every request is queued at time zero (offline batch serving, the paper's
    /// evaluation setup).
    Immediate,
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_per_sec`
    /// requests per second.
    Poisson {
        /// Mean arrival rate in requests per second (must be positive).
        rate_per_sec: f64,
    },
    /// Bursty arrivals: groups of `size` requests land together every
    /// `period_secs` seconds (the first burst at time zero).
    Burst {
        /// Requests per burst (must be positive).
        size: usize,
        /// Seconds between consecutive bursts.
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// Scales the offered load by `factor` — the fleet-wide arrival sampling
    /// used by cluster serving, where an N-replica fleet is driven at N times
    /// the single-replica rate from *one* shared arrival stream: Poisson rates
    /// multiply, burst periods divide, and immediate arrivals are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        assert!(factor > 0.0, "load scale factor must be positive");
        match *self {
            ArrivalProcess::Immediate => ArrivalProcess::Immediate,
            ArrivalProcess::Poisson { rate_per_sec } => ArrivalProcess::Poisson {
                rate_per_sec: rate_per_sec * factor,
            },
            ArrivalProcess::Burst { size, period_secs } => ArrivalProcess::Burst {
                size,
                period_secs: period_secs / factor,
            },
        }
    }

    /// Stamps `requests` (in id order) with arrival times drawn from this process.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive Poisson rate or a zero burst size.
    pub fn stamp(&self, requests: &mut [Request], seed: u64) {
        match *self {
            ArrivalProcess::Immediate => {
                for r in requests.iter_mut() {
                    r.arrival = Seconds::ZERO;
                }
            }
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                for r in requests.iter_mut() {
                    // Inverse-CDF sampling of the exponential gap; 1-u keeps the
                    // argument of ln strictly positive.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() / rate_per_sec;
                    r.arrival = Seconds::from_secs(t);
                }
            }
            ArrivalProcess::Burst { size, period_secs } => {
                assert!(size > 0, "burst size must be positive");
                for (i, r) in requests.iter_mut().enumerate() {
                    r.arrival = Seconds::from_secs((i / size) as f64 * period_secs.max(0.0));
                }
            }
        }
    }
}

/// Incremental arrival stamping for dynamic fleets: draws one arrival at a
/// time, scaling the process's *instantaneous* rate by a caller-supplied
/// factor (typically the number of currently-serving replicas), so the
/// offered load tracks fleet capacity as replicas fail, drain and join.
///
/// With a constant factor `n` this produces exactly the same arrival sequence
/// as [`ArrivalProcess::scaled`]`(n)` followed by [`ArrivalProcess::stamp`]
/// with the same seed: Poisson gaps divide by the factor draw-by-draw, burst
/// periods divide burst-by-burst, and immediate arrivals stay at time zero.
#[derive(Debug, Clone)]
pub struct ArrivalClock {
    process: ArrivalProcess,
    rng: StdRng,
    t: f64,
    emitted: usize,
}

impl ArrivalClock {
    /// A clock drawing from `process`, seeded like [`ArrivalProcess::stamp`].
    ///
    /// # Panics
    ///
    /// Panics on a non-positive Poisson rate or a zero burst size.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        match process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "Poisson rate must be positive");
            }
            ArrivalProcess::Burst { size, .. } => {
                assert!(size > 0, "burst size must be positive");
            }
            ArrivalProcess::Immediate => {}
        }
        ArrivalClock {
            process,
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            emitted: 0,
        }
    }

    /// The next arrival instant, with the process's instantaneous rate scaled
    /// by `factor` (Poisson rates multiply, burst periods divide; immediate
    /// arrivals ignore it). Arrival times are non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn next(&mut self, factor: f64) -> Seconds {
        assert!(factor > 0.0, "arrival rate factor must be positive");
        match self.process {
            ArrivalProcess::Immediate => {}
            ArrivalProcess::Poisson { rate_per_sec } => {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                self.t += -(1.0 - u).ln() / (rate_per_sec * factor);
            }
            ArrivalProcess::Burst { size, period_secs } => {
                if self.emitted > 0 && self.emitted.is_multiple_of(size) {
                    self.t += period_secs.max(0.0) / factor;
                }
            }
        }
        self.emitted += 1;
        Seconds::from_secs(self.t)
    }

    /// How many arrivals the clock has emitted.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

/// How generation lengths are assigned when synthesizing a request queue
/// (the `gen_len` axis of a serving scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenLens {
    /// Every request generates exactly this many tokens.
    Uniform(u64),
    /// Generation lengths drawn uniformly from the workload's
    /// `default_gen_lens` — the heterogeneous queue continuous batching is
    /// designed for, where short requests free KV capacity mid-flight.
    MixedDefaults,
}

impl GenLens {
    /// The generation length capacity plans (policies, KV budgets) are sized
    /// for: the uniform length, or the *mean* of the workload defaults for
    /// mixed queues. Provisioning a mixed queue for its expected load admits a
    /// far larger batch than worst-case sizing; keeping the tail within budget
    /// is the batch scheduler's admission-control job.
    pub fn policy_gen_for(&self, spec: &WorkloadSpec) -> u64 {
        match *self {
            GenLens::Uniform(gen) => gen,
            GenLens::MixedDefaults => {
                let lens = &spec.default_gen_lens;
                if lens.is_empty() {
                    1
                } else {
                    (lens.iter().sum::<u64>() as f64 / lens.len() as f64).round() as u64
                }
            }
        }
    }
}

/// A benchmark workload description (Tab. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name, e.g. `"MTBench"`.
    pub name: String,
    /// Average prompt length `s_avg`.
    pub avg_prompt_len: u64,
    /// Maximum prompt length `s_max`.
    pub max_prompt_len: u64,
    /// Default generation length(s) evaluated by the paper.
    pub default_gen_lens: Vec<u64>,
}

impl WorkloadSpec {
    /// MTBench: 80 multi-turn questions replicated for batch inference
    /// (`s_avg` = 77, `s_max` = 418, gen ∈ {32, 64, 128, 256}).
    pub fn mtbench() -> Self {
        WorkloadSpec {
            name: "MTBench".to_owned(),
            avg_prompt_len: 77,
            max_prompt_len: 418,
            default_gen_lens: vec![32, 64, 128, 256],
        }
    }

    /// HELM synthetic reasoning (`s_avg` = 242, `s_max` = 256, gen = 50).
    pub fn synthetic_reasoning() -> Self {
        WorkloadSpec {
            name: "Synthetic Reasoning".to_owned(),
            avg_prompt_len: 242,
            max_prompt_len: 256,
            default_gen_lens: vec![50],
        }
    }

    /// HELM summarization (`s_avg` = 1693, `s_max` = 1984, gen = 64).
    pub fn summarization() -> Self {
        WorkloadSpec {
            name: "Summarization".to_owned(),
            avg_prompt_len: 1693,
            max_prompt_len: 1984,
            default_gen_lens: vec![64],
        }
    }

    /// All three paper workloads.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            Self::mtbench(),
            Self::synthetic_reasoning(),
            Self::summarization(),
        ]
    }

    /// Samples `count` requests with the given generation length.
    ///
    /// Prompt lengths are drawn so the sample mean matches `avg_prompt_len` and
    /// the support spans up to `max_prompt_len` (Tab. 3's `s_max`). Workloads
    /// whose maximum sits close to the average (the HELM pair) use a symmetric
    /// uniform spread around the average; workloads with a long tail (MTBench:
    /// `s_avg` = 77 but `s_max` = 418) use a two-component mixture — most
    /// prompts short (uniform in `[1, s_avg]`), a mean-preserving fraction long
    /// (uniform in `[s_avg, s_max]`) — so batch formation actually faces the
    /// length imbalance the paper's Algorithm 2 is designed for.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn sample_requests(&self, count: usize, gen_len: u64, seed: u64) -> Vec<Request> {
        assert!(count > 0, "cannot sample an empty workload");
        let mut rng = StdRng::seed_from_u64(seed);
        let avg = self.avg_prompt_len as f64;
        let up = (self.max_prompt_len - self.avg_prompt_len) as f64;
        let down = (self.avg_prompt_len - 1) as f64;
        // Probability of drawing from the long component; E[uniform(avg, max)]
        // exceeds the average by up/2 and E[uniform(1, avg)] undershoots by
        // down/2, so this weight makes the two offsets cancel exactly.
        let long_fraction = if up + down > 0.0 {
            down / (up + down)
        } else {
            0.0
        };
        (0..count)
            .map(|i| {
                let len = if up <= down {
                    // Narrow spread: symmetric uniform around the average.
                    rng.gen_range((avg - up)..=(avg + up))
                } else if rng.gen_range(0.0..1.0) < long_fraction {
                    rng.gen_range(avg..=(avg + up))
                } else {
                    rng.gen_range((avg - down)..=avg)
                };
                Request::new(
                    i as u64,
                    (len.round().max(1.0) as u64).min(self.max_prompt_len),
                    gen_len,
                )
            })
            .collect()
    }

    /// Samples `count` requests whose generation lengths are drawn uniformly from
    /// the workload's `default_gen_lens` (prompts as in [`Self::sample_requests`]).
    /// This is the heterogeneous-`gen_len` queue continuous batching is designed
    /// for: short requests complete and free KV capacity while long ones decode on.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the workload has no default generation lengths.
    pub fn sample_requests_mixed_gen(&self, count: usize, seed: u64) -> Vec<Request> {
        assert!(
            !self.default_gen_lens.is_empty(),
            "workload has no default generation lengths"
        );
        let mut requests = self.sample_requests(count, self.default_gen_lens[0], seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
        for r in &mut requests {
            r.gen_len = self.default_gen_lens[rng.gen_range(0..self.default_gen_lens.len())];
        }
        requests
    }

    /// Samples requests whose prompts are all padded to the maximum length, the way
    /// FlexGen (and MoE-Lightning(p)) handle variable-length batches.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn padded_requests(&self, count: usize, gen_len: u64) -> Vec<Request> {
        assert!(count > 0, "cannot sample an empty workload");
        (0..count)
            .map(|i| Request::new(i as u64, self.max_prompt_len, gen_len))
            .collect()
    }

    /// Synthesizes the request queue a serving system sees for this workload:
    /// padded systems receive every prompt at `max_prompt_len`, the others a
    /// variable-length sample matching the workload's length statistics.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn request_queue(
        &self,
        count: usize,
        gen_len: u64,
        seed: u64,
        padded: bool,
    ) -> Vec<Request> {
        if padded {
            self.padded_requests(count, gen_len)
        } else {
            self.sample_requests(count, gen_len, seed)
        }
    }

    /// Synthesizes a request queue and stamps it with arrival times from
    /// `arrivals`, the online-serving counterpart of [`Self::request_queue`].
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the arrival process parameters are invalid.
    pub fn timed_request_queue(
        &self,
        count: usize,
        gen_len: u64,
        seed: u64,
        padded: bool,
        arrivals: &ArrivalProcess,
    ) -> Vec<Request> {
        self.synthesize_queue(count, GenLens::Uniform(gen_len), seed, padded, arrivals)
    }

    /// Synthesizes the full request queue of a serving scenario: prompt lengths
    /// per the workload (padded systems see `max_prompt_len`), generation
    /// lengths per `gen` ([`GenLens::Uniform`] or the mixed default lengths),
    /// and arrival times stamped by `arrivals`. This is the queue-synthesis
    /// entry point behind the core crate's `ServeSpec`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero, if `gen` is [`GenLens::MixedDefaults`] on a
    /// workload without default generation lengths, or if the arrival process
    /// parameters are invalid.
    pub fn synthesize_queue(
        &self,
        count: usize,
        gen: GenLens,
        seed: u64,
        padded: bool,
        arrivals: &ArrivalProcess,
    ) -> Vec<Request> {
        let mut queue = match gen {
            GenLens::Uniform(gen_len) => self.request_queue(count, gen_len, seed, padded),
            GenLens::MixedDefaults => {
                let mut queue = self.sample_requests_mixed_gen(count, seed);
                if padded {
                    for r in &mut queue {
                        r.input_len = self.max_prompt_len;
                    }
                }
                queue
            }
        };
        arrivals.stamp(&mut queue, seed.wrapping_add(0x51_7c_c1_b7));
        queue
    }

    /// Average prompt length of a request list (tokens).
    pub fn mean_prompt(requests: &[Request]) -> f64 {
        if requests.is_empty() {
            return 0.0;
        }
        requests.iter().map(|r| r.input_len as f64).sum::<f64>() / requests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_3() {
        let mt = WorkloadSpec::mtbench();
        assert_eq!((mt.avg_prompt_len, mt.max_prompt_len), (77, 418));
        assert_eq!(mt.default_gen_lens, vec![32, 64, 128, 256]);
        let sr = WorkloadSpec::synthetic_reasoning();
        assert_eq!((sr.avg_prompt_len, sr.max_prompt_len), (242, 256));
        let sum = WorkloadSpec::summarization();
        assert_eq!((sum.avg_prompt_len, sum.max_prompt_len), (1693, 1984));
        assert_eq!(WorkloadSpec::all().len(), 3);
    }

    #[test]
    fn sampled_requests_respect_bounds_and_mean() {
        for spec in WorkloadSpec::all() {
            let reqs = spec.sample_requests(2000, 64, 7);
            assert_eq!(reqs.len(), 2000);
            assert!(reqs
                .iter()
                .all(|r| r.input_len >= 1 && r.input_len <= spec.max_prompt_len));
            assert!(reqs.iter().all(|r| r.gen_len == 64));
            let mean = WorkloadSpec::mean_prompt(&reqs);
            let rel = (mean - spec.avg_prompt_len as f64).abs() / spec.avg_prompt_len as f64;
            assert!(
                rel < 0.25,
                "{}: mean {mean} too far from {}",
                spec.name,
                spec.avg_prompt_len
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = WorkloadSpec::mtbench();
        assert_eq!(
            spec.sample_requests(50, 32, 1),
            spec.sample_requests(50, 32, 1)
        );
        assert_ne!(
            spec.sample_requests(50, 32, 1),
            spec.sample_requests(50, 32, 2)
        );
    }

    #[test]
    fn padded_requests_all_use_max_prompt() {
        let spec = WorkloadSpec::mtbench();
        let reqs = spec.padded_requests(10, 128);
        assert!(reqs.iter().all(|r| r.input_len == 418));
        assert_eq!(reqs[3].max_context(), 418 + 128);
    }

    #[test]
    fn request_ids_are_unique_and_sequential() {
        let reqs = WorkloadSpec::synthetic_reasoning().sample_requests(100, 50, 3);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn request_queue_switches_on_padding() {
        let spec = WorkloadSpec::mtbench();
        let padded = spec.request_queue(20, 64, 5, true);
        assert!(padded.iter().all(|r| r.input_len == spec.max_prompt_len));
        let sampled = spec.request_queue(20, 64, 5, false);
        assert_eq!(sampled, spec.sample_requests(20, 64, 5));
        assert!(sampled.iter().any(|r| r.input_len != spec.max_prompt_len));
    }

    #[test]
    fn requests_default_to_one_shot_standard_class() {
        let r = Request::new(7, 100, 32);
        assert_eq!(r.session_id, 7, "default session is the request's own id");
        assert_eq!(r.slo_class, SloClass::Standard);
        let r = r.with_session(3).with_slo_class(SloClass::Batch);
        assert_eq!((r.session_id, r.slo_class), (3, SloClass::Batch));
        for class in SloClass::ALL {
            assert_eq!(SloClass::from_label(class.label()), Some(class));
            assert_eq!(SloClass::ALL[class.index()], class);
        }
        assert_eq!(SloClass::from_label("gold"), None);
        assert_eq!(SloClass::Interactive.to_string(), "interactive");
        assert_eq!(SloClass::default(), SloClass::Standard);
    }

    #[test]
    fn mean_prompt_of_empty_slice_is_zero() {
        assert_eq!(WorkloadSpec::mean_prompt(&[]), 0.0);
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_match_the_rate() {
        let spec = WorkloadSpec::mtbench();
        let queue = spec.timed_request_queue(
            2000,
            64,
            11,
            false,
            &ArrivalProcess::Poisson { rate_per_sec: 4.0 },
        );
        let mut last = Seconds::ZERO;
        for r in &queue {
            assert!(r.arrival >= last, "arrival times must be non-decreasing");
            last = r.arrival;
        }
        // 2000 arrivals at 4 rps take ~500 s; the sample mean gap is within 15%.
        let span = queue.last().unwrap().arrival.as_secs();
        assert!(
            (span - 500.0).abs() / 500.0 < 0.15,
            "2000 arrivals at 4 rps should span ~500 s, got {span}"
        );
    }

    #[test]
    fn scaled_arrivals_multiply_the_offered_load() {
        let poisson = ArrivalProcess::Poisson { rate_per_sec: 2.0 };
        assert_eq!(
            poisson.scaled(4.0),
            ArrivalProcess::Poisson { rate_per_sec: 8.0 }
        );
        let burst = ArrivalProcess::Burst {
            size: 10,
            period_secs: 8.0,
        };
        assert_eq!(
            burst.scaled(4.0),
            ArrivalProcess::Burst {
                size: 10,
                period_secs: 2.0,
            }
        );
        assert_eq!(
            ArrivalProcess::Immediate.scaled(4.0),
            ArrivalProcess::Immediate
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scaling_by_zero_panics() {
        let _ = ArrivalProcess::Poisson { rate_per_sec: 1.0 }.scaled(0.0);
    }

    #[test]
    fn burst_arrivals_land_in_groups() {
        let mut queue = WorkloadSpec::mtbench().sample_requests(10, 32, 1);
        ArrivalProcess::Burst {
            size: 4,
            period_secs: 10.0,
        }
        .stamp(&mut queue, 0);
        let times: Vec<f64> = queue.iter().map(|r| r.arrival.as_secs()).collect();
        assert_eq!(
            times,
            vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0, 20.0, 20.0]
        );
    }

    #[test]
    fn immediate_arrivals_reset_to_zero() {
        let mut queue = WorkloadSpec::mtbench().sample_requests(5, 32, 1);
        ArrivalProcess::Poisson { rate_per_sec: 1.0 }.stamp(&mut queue, 3);
        assert!(queue.iter().any(|r| r.arrival > Seconds::ZERO));
        ArrivalProcess::Immediate.stamp(&mut queue, 3);
        assert!(queue.iter().all(|r| r.arrival == Seconds::ZERO));
    }

    #[test]
    fn mixed_gen_sampling_uses_the_workload_gen_lens() {
        let spec = WorkloadSpec::mtbench();
        let queue = spec.sample_requests_mixed_gen(500, 7);
        assert_eq!(queue.len(), 500);
        for r in &queue {
            assert!(spec.default_gen_lens.contains(&r.gen_len));
        }
        // With 4 candidate lengths and 500 draws, every length shows up.
        for gen in &spec.default_gen_lens {
            assert!(
                queue.iter().any(|r| r.gen_len == *gen),
                "gen_len {gen} never sampled"
            );
        }
        assert_eq!(
            spec.sample_requests_mixed_gen(500, 7),
            spec.sample_requests_mixed_gen(500, 7)
        );
    }

    #[test]
    fn synthesize_queue_covers_every_scenario_axis() {
        let spec = WorkloadSpec::mtbench();
        // Uniform gen, unpadded, immediate: identical to the legacy helper.
        let uniform = spec.synthesize_queue(
            30,
            GenLens::Uniform(64),
            5,
            false,
            &ArrivalProcess::Immediate,
        );
        assert_eq!(uniform, spec.request_queue(30, 64, 5, false));
        // Mixed gen draws from the workload defaults.
        let mixed = spec.synthesize_queue(
            200,
            GenLens::MixedDefaults,
            5,
            false,
            &ArrivalProcess::Immediate,
        );
        assert!(mixed
            .iter()
            .all(|r| spec.default_gen_lens.contains(&r.gen_len)));
        assert!(mixed.iter().any(|r| r.gen_len != mixed[0].gen_len));
        // Padded + mixed: prompts at the maximum, gen lengths still mixed.
        let padded = spec.synthesize_queue(
            200,
            GenLens::MixedDefaults,
            5,
            true,
            &ArrivalProcess::Immediate,
        );
        assert!(padded.iter().all(|r| r.input_len == spec.max_prompt_len));
        assert!(padded.iter().any(|r| r.gen_len != padded[0].gen_len));
        // Arrivals are stamped.
        let online = spec.synthesize_queue(
            50,
            GenLens::Uniform(32),
            5,
            false,
            &ArrivalProcess::Poisson { rate_per_sec: 2.0 },
        );
        assert!(online.iter().any(|r| r.arrival > Seconds::ZERO));
    }

    #[test]
    fn policy_sizing_uses_the_expected_generation_length() {
        let spec = WorkloadSpec::mtbench();
        assert_eq!(GenLens::Uniform(96).policy_gen_for(&spec), 96);
        // Mean of {32, 64, 128, 256}.
        assert_eq!(GenLens::MixedDefaults.policy_gen_for(&spec), 120);
        assert_eq!(
            GenLens::MixedDefaults.policy_gen_for(&WorkloadSpec::summarization()),
            64
        );
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn sampling_zero_requests_panics() {
        WorkloadSpec::mtbench().sample_requests(0, 32, 1);
    }

    #[test]
    fn arrival_clock_with_constant_factor_matches_pre_scaled_stamping() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 2.0 },
            ArrivalProcess::Burst {
                size: 5,
                period_secs: 12.0,
            },
            ArrivalProcess::Immediate,
        ] {
            let mut stamped = WorkloadSpec::mtbench().sample_requests(64, 32, 3);
            process.scaled(4.0).stamp(&mut stamped, 99);
            let mut clock = ArrivalClock::new(process, 99);
            for (i, r) in stamped.iter().enumerate() {
                let t = clock.next(4.0);
                assert!(
                    (t.as_secs() - r.arrival.as_secs()).abs() < 1e-9,
                    "{process:?} arrival {i}: clock {t:?} != stamped {:?}",
                    r.arrival
                );
            }
            assert_eq!(clock.emitted(), 64);
        }
    }

    #[test]
    fn arrival_clock_speeds_up_when_the_factor_grows() {
        // Burst periods shrink mid-stream when capacity doubles.
        let mut clock = ArrivalClock::new(
            ArrivalProcess::Burst {
                size: 2,
                period_secs: 10.0,
            },
            0,
        );
        let times: Vec<f64> = (0..6)
            .map(|i| clock.next(if i < 4 { 1.0 } else { 2.0 }).as_secs())
            .collect();
        assert_eq!(times, vec![0.0, 0.0, 10.0, 10.0, 15.0, 15.0]);
        // Poisson arrival times are non-decreasing under any factor schedule.
        let mut clock = ArrivalClock::new(ArrivalProcess::Poisson { rate_per_sec: 1.0 }, 7);
        let mut last = Seconds::ZERO;
        for i in 0..100 {
            let t = clock.next(1.0 + (i % 5) as f64);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn arrival_clock_rejects_non_positive_factors() {
        let _ = ArrivalClock::new(ArrivalProcess::Immediate, 0).next(0.0);
    }
}
