//! Workloads, request batching and metrics for the MoE-Lightning reproduction.
//!
//! * [`spec`] — the paper's three workloads (Tab. 3), synthetic request sampling
//!   and online arrival processes (Poisson/burst) for serving under load.
//! * [`batching`] — the batch-formation data model (micro-batches, limits,
//!   partition occupancy) plus Algorithm 2 (Appendix A.2) as free-function
//!   shorthand.
//! * [`scheduler`] — the pluggable [`Scheduler`] trait with four strategies:
//!   the paper's [`Algorithm2`], FlexGen-style [`FcfsPadded`], Orca/vLLM-style
//!   [`TokenBudget`] and a latency-oriented [`ShortestJobFirst`].
//! * [`metrics`] — generation-throughput accounting (the evaluation metric) and
//!   queue-aware per-request latency (TTFT, per-token, completion).
//!
//! # Examples
//!
//! ```
//! use moe_workload::{batch_requests, BatchingConfig, WorkloadSpec};
//!
//! let requests = WorkloadSpec::mtbench().sample_requests(128, 64, 42);
//! let result = batch_requests(
//!     &requests,
//!     &BatchingConfig {
//!         num_micro_batches: 4,
//!         max_requests_per_micro_batch: 32,
//!         max_scheduled_requests: usize::MAX,
//!         cache_tokens_per_micro_batch: 1 << 20,
//!     },
//! );
//! assert_eq!(result.micro_batches.len(), 4);
//! assert!(result.aborted.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batching;
pub mod metrics;
pub mod scheduler;
pub mod spec;

pub use batching::{
    backfill_requests, batch_requests, BackfillResult, BatchingConfig, BatchingConfigError,
    BatchingResult, MicroBatch, PartitionState,
};
pub use metrics::{BatchRunReport, LatencySummary, RequestLatency};
pub use scheduler::{
    builtin_schedulers, Algorithm2, FcfsPadded, QueueOrder, Scheduler, ShortestJobFirst,
    TokenBudget,
};
pub use spec::{ArrivalClock, ArrivalProcess, GenLens, Request, SloClass, WorkloadSpec};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_requests() -> impl Strategy<Value = Vec<Request>> {
        proptest::collection::vec((1u64..2048, 1u64..256), 1..200).prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (input_len, gen_len))| Request::new(i as u64, input_len, gen_len))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn batching_never_loses_or_duplicates_requests(
            reqs in arbitrary_requests(),
            n_ub in 1usize..16,
            ubs in 1usize..64,
            cache in 100u64..100_000,
        ) {
            let result = batch_requests(&reqs, &BatchingConfig {
                num_micro_batches: n_ub,
                max_requests_per_micro_batch: ubs,
                max_scheduled_requests: usize::MAX,
                cache_tokens_per_micro_batch: cache,
            });
            let mut seen: Vec<u64> = result
                .micro_batches
                .iter()
                .flat_map(|mb| mb.requests.iter().map(|r| r.id))
                .chain(result.aborted.iter().map(|r| r.id))
                .collect();
            seen.sort_unstable();
            let mut expected: Vec<u64> = reqs.iter().map(|r| r.id).collect();
            expected.sort_unstable();
            prop_assert_eq!(seen, expected);
        }

        #[test]
        fn batching_respects_caps(
            reqs in arbitrary_requests(),
            n_ub in 1usize..16,
            ubs in 1usize..64,
        ) {
            let cfg = BatchingConfig {
                num_micro_batches: n_ub,
                max_requests_per_micro_batch: ubs,
                max_scheduled_requests: usize::MAX,
                cache_tokens_per_micro_batch: 1 << 20,
            };
            let result = batch_requests(&reqs, &cfg);
            prop_assert!(result.micro_batches.len() <= n_ub);
            for mb in &result.micro_batches {
                prop_assert!(mb.len() <= ubs);
            }
        }

        #[test]
        fn scheduled_micro_batches_respect_cache_budget(
            reqs in arbitrary_requests(),
            n_ub in 1usize..8,
            cache in 2_000u64..50_000,
        ) {
            let cfg = BatchingConfig {
                num_micro_batches: n_ub,
                max_requests_per_micro_batch: 1024,
                max_scheduled_requests: usize::MAX,
                cache_tokens_per_micro_batch: cache,
            };
            let result = batch_requests(&reqs, &cfg);
            for mb in &result.micro_batches {
                let cache_needed = mb.max_cache_tokens();
                prop_assert!(cache_needed <= cache,
                    "micro-batch needs {} tokens but the budget is {}", cache_needed, cache);
            }
        }

        #[test]
        fn sampled_workloads_stay_within_bounds(count in 1usize..500, gen in 1u64..512, seed in 0u64..1000) {
            for spec in WorkloadSpec::all() {
                let reqs = spec.sample_requests(count, gen, seed);
                prop_assert_eq!(reqs.len(), count);
                for r in &reqs {
                    prop_assert!(r.input_len >= 1 && r.input_len <= spec.max_prompt_len);
                    prop_assert_eq!(r.gen_len, gen);
                }
            }
        }
    }
}
