//! Request batching — Algorithm 2 of the paper (Appendix A.2).
//!
//! For variable-length prompts, requests are sorted by input length (descending) and
//! greedily assigned to the micro-batch with the fewest tokens so far, subject to a
//! per-micro-batch request cap (`ubs`) and KV-cache size limit. Requests that cannot
//! fit are *aborted* (deferred to the next batch), exactly as in the paper's
//! pseudo-code.

use crate::spec::Request;
use serde::{Deserialize, Serialize};

/// One micro-batch produced by the batching algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The requests assigned to this micro-batch.
    pub requests: Vec<Request>,
}

impl MicroBatch {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the micro-batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Sum of prompt tokens across requests.
    pub fn prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.input_len).sum()
    }

    /// KV-cache tokens needed at the end of generation.
    pub fn max_cache_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.max_context()).sum()
    }
}

/// Result of running Algorithm 2 on a request queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchingResult {
    /// The formed micro-batches.
    pub micro_batches: Vec<MicroBatch>,
    /// Requests deferred to the next batch (cache-size or capacity overflow).
    pub aborted: Vec<Request>,
}

impl BatchingResult {
    /// Total number of scheduled requests.
    pub fn scheduled_requests(&self) -> usize {
        self.micro_batches.iter().map(MicroBatch::len).sum()
    }

    /// The largest and smallest per-micro-batch prompt token counts (imbalance
    /// indicator).
    pub fn prompt_token_spread(&self) -> (u64, u64) {
        let counts: Vec<u64> = self
            .micro_batches
            .iter()
            .map(MicroBatch::prompt_tokens)
            .collect();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        (min, max)
    }
}

/// Parameters of the batching algorithm (inputs of Algorithm 2).
///
/// The paper's pseudo-code also takes a uniform `gen_len`; here each [`Request`]
/// carries its own, so the KV-cache projection uses the per-request
/// `max_context()` instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Number of micro-batches to form (`n_ub`).
    pub num_micro_batches: usize,
    /// Maximum number of requests per micro-batch (`ubs`).
    pub max_requests_per_micro_batch: usize,
    /// Maximum requests across all micro-batches (the policy's batch size `N`;
    /// binds when `N` is not a multiple of `ubs`, so `n_ub × ubs > N`).
    pub max_scheduled_requests: usize,
    /// Maximum KV-cache tokens per micro-batch (`cache_size`).
    pub cache_tokens_per_micro_batch: u64,
}

/// Runs Algorithm 2: balanced assignment of requests to micro-batches.
///
/// # Panics
///
/// Panics if `num_micro_batches` or `max_requests_per_micro_batch` is zero.
pub fn batch_requests(queue: &[Request], cfg: &BatchingConfig) -> BatchingResult {
    assert!(cfg.num_micro_batches > 0, "need at least one micro-batch");
    assert!(
        cfg.max_requests_per_micro_batch > 0,
        "need a positive per-micro-batch capacity"
    );

    // partitions[i] collects requests; partition_sums[i] tracks assigned prompt
    // tokens (the balancing criterion); cache_sums[i] tracks the end-of-generation
    // KV tokens the partition has reserved (the admission criterion).
    let mut partitions: Vec<Vec<Request>> = vec![Vec::new(); cfg.num_micro_batches];
    let mut partition_sums: Vec<u64> = vec![0; cfg.num_micro_batches];
    let mut cache_sums: Vec<u64> = vec![0; cfg.num_micro_batches];
    let mut open: Vec<usize> = (0..cfg.num_micro_batches).collect();
    let mut finished: Vec<(usize, Vec<Request>)> = Vec::new();
    let mut aborted = Vec::new();

    let mut sorted: Vec<Request> = queue.to_vec();
    sorted.sort_by(|a, b| b.input_len.cmp(&a.input_len).then(a.id.cmp(&b.id)));

    let mut scheduled = 0usize;
    for req in sorted {
        if open.is_empty() || scheduled == cfg.max_scheduled_requests {
            aborted.push(req);
            continue;
        }
        // Pick the open partition with the fewest prompt tokens.
        let &idx = open
            .iter()
            .min_by_key(|&&i| (partition_sums[i], i))
            .expect("open is non-empty");
        let projected_cache = cache_sums[idx] + req.max_context();
        if projected_cache > cfg.cache_tokens_per_micro_batch {
            aborted.push(req);
            continue;
        }
        partitions[idx].push(req);
        partition_sums[idx] += req.input_len;
        cache_sums[idx] += req.max_context();
        scheduled += 1;
        if partitions[idx].len() == cfg.max_requests_per_micro_batch {
            // The micro-batch is full: move it to the finished list and close it.
            finished.push((idx, std::mem::take(&mut partitions[idx])));
            open.retain(|&i| i != idx);
        }
    }

    // Emit full micro-batches first (in the order they filled up), then the remaining
    // partially filled ones in index order.
    let mut micro_batches: Vec<MicroBatch> = finished
        .into_iter()
        .map(|(_, requests)| MicroBatch { requests })
        .collect();
    for requests in partitions.into_iter().filter(|p| !p.is_empty()) {
        micro_batches.push(MicroBatch { requests });
    }

    BatchingResult {
        micro_batches,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn cfg(n_ub: usize, ubs: usize, cache: u64) -> BatchingConfig {
        BatchingConfig {
            num_micro_batches: n_ub,
            max_requests_per_micro_batch: ubs,
            max_scheduled_requests: usize::MAX,
            cache_tokens_per_micro_batch: cache,
        }
    }

    fn req(id: u64, len: u64) -> Request {
        Request {
            id,
            input_len: len,
            gen_len: 32,
        }
    }

    #[test]
    fn balances_tokens_across_micro_batches() {
        let reqs = WorkloadSpec::mtbench().sample_requests(256, 32, 11);
        let result = batch_requests(&reqs, &cfg(8, 32, u64::MAX));
        assert_eq!(result.scheduled_requests(), 256);
        assert!(result.aborted.is_empty());
        assert_eq!(result.micro_batches.len(), 8);
        let (min, max) = result.prompt_token_spread();
        assert!(
            max - min <= WorkloadSpec::mtbench().max_prompt_len,
            "greedy balancing keeps the spread below one max-length request: {min}..{max}"
        );
    }

    #[test]
    fn respects_per_micro_batch_request_cap() {
        let reqs: Vec<Request> = (0..20).map(|i| req(i, 100)).collect();
        let result = batch_requests(&reqs, &cfg(4, 4, u64::MAX));
        // Only 4×4 = 16 requests fit; the remaining 4 are aborted.
        assert_eq!(result.scheduled_requests(), 16);
        assert_eq!(result.aborted.len(), 4);
        assert!(result.micro_batches.iter().all(|mb| mb.len() <= 4));
    }

    #[test]
    fn respects_cache_size_limit() {
        let reqs: Vec<Request> = (0..8).map(|i| req(i, 1000)).collect();
        // Cache only fits one 1000-token prompt plus generation per micro-batch.
        let result = batch_requests(&reqs, &cfg(2, 8, 1100));
        assert_eq!(result.scheduled_requests(), 2);
        assert_eq!(result.aborted.len(), 6);
        for mb in &result.micro_batches {
            assert!(mb.max_cache_tokens() <= 1100);
        }
    }

    #[test]
    fn longest_requests_are_spread_over_different_micro_batches() {
        let mut reqs: Vec<Request> = (0..4).map(|i| req(i, 400)).collect();
        reqs.extend((4..12).map(|i| req(i, 10)));
        let result = batch_requests(&reqs, &cfg(4, 3, u64::MAX));
        // The four long requests must land in four different micro-batches.
        let long_counts: Vec<usize> = result
            .micro_batches
            .iter()
            .map(|mb| mb.requests.iter().filter(|r| r.input_len == 400).count())
            .collect();
        assert!(
            long_counts.iter().all(|&c| c <= 1),
            "long requests clumped: {long_counts:?}"
        );
    }

    #[test]
    fn single_request_exceeding_cache_limit_aborts_without_panicking() {
        // One request whose prompt alone blows the per-micro-batch KV budget must be
        // deferred (the paper's "abort"), not crash the batcher.
        let giant = req(0, 10_000);
        let result = batch_requests(&[giant], &cfg(4, 8, 1000));
        assert!(result.micro_batches.is_empty());
        assert_eq!(result.aborted, vec![giant]);
        // Mixed with schedulable requests, only the oversized one is aborted.
        let queue = [giant, req(1, 100), req(2, 200)];
        let result = batch_requests(&queue, &cfg(4, 8, 1000));
        assert_eq!(result.scheduled_requests(), 2);
        assert_eq!(result.aborted, vec![giant]);
    }

    #[test]
    fn all_equal_length_requests_produce_balanced_micro_batches() {
        let reqs: Vec<Request> = (0..32).map(|i| req(i, 64)).collect();
        let result = batch_requests(&reqs, &cfg(8, 8, u64::MAX));
        assert_eq!(result.scheduled_requests(), 32);
        assert!(result.aborted.is_empty());
        assert_eq!(result.micro_batches.len(), 8);
        // Perfect balance: every micro-batch holds exactly 4 requests / 256 tokens.
        assert!(result.micro_batches.iter().all(|mb| mb.len() == 4));
        let (min, max) = result.prompt_token_spread();
        assert_eq!((min, max), (256, 256));
    }

    #[test]
    fn total_request_cap_binds_before_per_micro_batch_caps() {
        // n_ub × ubs = 12, but the total cap (a non-divisible batch size) is 10.
        let reqs: Vec<Request> = (0..20).map(|i| req(i, 50)).collect();
        let mut config = cfg(3, 4, u64::MAX);
        config.max_scheduled_requests = 10;
        let result = batch_requests(&reqs, &config);
        assert_eq!(result.scheduled_requests(), 10);
        assert_eq!(result.aborted.len(), 10);
        assert!(result.micro_batches.iter().all(|mb| mb.len() <= 4));
    }

    #[test]
    fn empty_queue_produces_no_micro_batches() {
        let result = batch_requests(&[], &cfg(4, 8, 1000));
        assert!(result.micro_batches.is_empty());
        assert!(result.aborted.is_empty());
        assert_eq!(result.prompt_token_spread(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one micro-batch")]
    fn zero_micro_batches_panics() {
        batch_requests(&[], &cfg(0, 8, 1000));
    }

    #[test]
    fn micro_batch_accessors() {
        let mb = MicroBatch {
            requests: vec![req(0, 10), req(1, 20)],
        };
        assert_eq!(mb.len(), 2);
        assert!(!mb.is_empty());
        assert_eq!(mb.prompt_tokens(), 30);
        assert_eq!(mb.max_cache_tokens(), 30 + 64);
    }
}
