//! Request batching — the shared data model of the batch-formation layer, plus
//! Algorithm 2 of the paper (Appendix A.2) as free-function shorthand.
//!
//! For variable-length prompts, Algorithm 2 sorts requests by input length
//! (descending) and greedily assigns each to the micro-batch with the fewest
//! tokens so far, subject to a per-micro-batch request cap (`ubs`) and KV-cache
//! size limit. When the token-minimal micro-batch lacks KV headroom, the request
//! spills to the open micro-batch with the next-fewest tokens that can still hold
//! it; only requests no open micro-batch can hold are *aborted* (deferred to the
//! next batch).
//!
//! The assignment itself lives behind the [`crate::scheduler::Scheduler`] trait
//! ([`crate::scheduler::Algorithm2`] is the paper's strategy); [`batch_requests`]
//! and [`backfill_requests`] are convenience wrappers over it. The serving loop
//! in the core crate is generic over the trait, so alternative strategies
//! (FCFS-padded, token-budget, shortest-job-first) plug in without touching it.

use crate::scheduler::{Algorithm2, Scheduler};
use crate::spec::Request;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One micro-batch produced by the batching algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// The requests assigned to this micro-batch.
    pub requests: Vec<Request>,
}

impl MicroBatch {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the micro-batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Sum of prompt tokens across requests.
    pub fn prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.input_len).sum()
    }

    /// KV-cache tokens needed at the end of generation.
    pub fn max_cache_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.max_context()).sum()
    }
}

/// Result of running Algorithm 2 on a request queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchingResult {
    /// The formed micro-batches.
    pub micro_batches: Vec<MicroBatch>,
    /// Requests deferred to the next batch (cache-size or capacity overflow).
    pub aborted: Vec<Request>,
}

impl BatchingResult {
    /// Total number of scheduled requests.
    pub fn scheduled_requests(&self) -> usize {
        self.micro_batches.iter().map(MicroBatch::len).sum()
    }

    /// The largest and smallest per-micro-batch prompt token counts (imbalance
    /// indicator).
    pub fn prompt_token_spread(&self) -> (u64, u64) {
        let counts: Vec<u64> = self
            .micro_batches
            .iter()
            .map(MicroBatch::prompt_tokens)
            .collect();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        (min, max)
    }
}

/// Parameters of the batching algorithm (inputs of Algorithm 2).
///
/// The paper's pseudo-code also takes a uniform `gen_len`; here each [`Request`]
/// carries its own, so the KV-cache projection uses the per-request
/// `max_context()` instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Number of micro-batches to form (`n_ub`).
    pub num_micro_batches: usize,
    /// Maximum number of requests per micro-batch (`ubs`).
    pub max_requests_per_micro_batch: usize,
    /// Maximum requests across all micro-batches (the policy's batch size `N`;
    /// binds when `N` is not a multiple of `ubs`, so `n_ub × ubs > N`).
    pub max_scheduled_requests: usize,
    /// Maximum KV-cache tokens per micro-batch (`cache_size`).
    pub cache_tokens_per_micro_batch: u64,
}

/// Why a [`BatchingConfig`] is unusable (see [`BatchingConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchingConfigError {
    /// `num_micro_batches` is zero — nothing could ever be scheduled, and the
    /// assignment engine would index an empty partition vector.
    ZeroMicroBatches,
    /// `max_requests_per_micro_batch` is zero — no micro-batch could admit a
    /// request.
    ZeroMicroBatchCapacity,
    /// `max_scheduled_requests` is zero — every request would be deferred
    /// forever.
    ZeroScheduledRequests,
    /// `cache_tokens_per_micro_batch` is zero — no request (every prompt is at
    /// least one token) could ever fit the KV budget.
    ZeroCacheBudget,
}

impl fmt::Display for BatchingConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchingConfigError::ZeroMicroBatches => f.write_str("num_micro_batches is zero"),
            BatchingConfigError::ZeroMicroBatchCapacity => {
                f.write_str("max_requests_per_micro_batch is zero")
            }
            BatchingConfigError::ZeroScheduledRequests => {
                f.write_str("max_scheduled_requests is zero")
            }
            BatchingConfigError::ZeroCacheBudget => {
                f.write_str("cache_tokens_per_micro_batch is zero")
            }
        }
    }
}

impl std::error::Error for BatchingConfigError {}

impl BatchingConfig {
    /// Checks that the configuration can schedule at least one request: all four
    /// limits must be positive. The scheduling engine `assert!`s the same
    /// conditions; callers that assemble configurations from external input
    /// (policies, specs) should validate first and surface the typed error.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), BatchingConfigError> {
        if self.num_micro_batches == 0 {
            return Err(BatchingConfigError::ZeroMicroBatches);
        }
        if self.max_requests_per_micro_batch == 0 {
            return Err(BatchingConfigError::ZeroMicroBatchCapacity);
        }
        if self.max_scheduled_requests == 0 {
            return Err(BatchingConfigError::ZeroScheduledRequests);
        }
        if self.cache_tokens_per_micro_batch == 0 {
            return Err(BatchingConfigError::ZeroCacheBudget);
        }
        Ok(())
    }
}

/// Occupancy of one micro-batch that already holds in-flight requests, as seen by
/// [`backfill_requests`]. The continuous-batching scheduler snapshots one entry per
/// micro-batch before re-running Algorithm 2 over the waiting queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionState {
    /// Requests currently decoding in this micro-batch.
    pub requests: usize,
    /// Prompt tokens of those requests (the balancing criterion).
    pub prompt_tokens: u64,
    /// End-of-generation KV tokens the micro-batch has reserved (the admission
    /// criterion).
    pub cache_tokens: u64,
}

impl PartitionState {
    /// Adds one request to the occupancy snapshot.
    pub fn admit(&mut self, req: &Request) {
        self.requests += 1;
        self.prompt_tokens += req.input_len;
        self.cache_tokens += req.max_context();
    }

    /// Removes one completed request, releasing its KV reservation.
    pub fn release(&mut self, req: &Request) {
        self.requests = self.requests.saturating_sub(1);
        self.prompt_tokens = self.prompt_tokens.saturating_sub(req.input_len);
        self.cache_tokens = self.cache_tokens.saturating_sub(req.max_context());
    }
}

/// Result of backfilling open micro-batch slots from a waiting queue.
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillResult {
    /// Newly admitted requests per micro-batch (parallel to the input state slice).
    pub assignments: Vec<Vec<Request>>,
    /// Requests that found no open micro-batch with a free slot and KV headroom.
    pub deferred: Vec<Request>,
    /// Indices of micro-batches that reached the request cap, in fill order.
    pub filled_order: Vec<usize>,
}

impl BackfillResult {
    /// Total number of newly admitted requests.
    pub fn admitted(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// Converts a from-scratch assignment (empty pre-occupancy) into a
    /// [`BatchingResult`]: full micro-batches first (in the order they filled
    /// up), then the remaining partially filled ones in index order.
    pub fn into_batching_result(mut self) -> BatchingResult {
        let mut micro_batches: Vec<MicroBatch> = Vec::new();
        for &idx in &self.filled_order {
            micro_batches.push(MicroBatch {
                requests: std::mem::take(&mut self.assignments[idx]),
            });
        }
        for requests in self.assignments.into_iter().filter(|p| !p.is_empty()) {
            micro_batches.push(MicroBatch { requests });
        }
        BatchingResult {
            micro_batches,
            aborted: self.deferred,
        }
    }
}

/// Runs the Algorithm 2 assignment over micro-batches that may already hold
/// in-flight requests: each queued request (longest prompt first) goes to the open
/// micro-batch with the fewest prompt tokens *among those with KV headroom*,
/// spilling to the next-fewest-token micro-batch instead of deferring when the
/// token-minimal one is cache-saturated.
///
/// `occupied` holds one [`PartitionState`] per micro-batch; its `requests` counts
/// bind against both `cfg.max_requests_per_micro_batch` and
/// `cfg.max_scheduled_requests`.
///
/// # Panics
///
/// Panics if `num_micro_batches` or `max_requests_per_micro_batch` is zero, or if
/// `occupied.len() != cfg.num_micro_batches`.
pub fn backfill_requests(
    queue: &[Request],
    cfg: &BatchingConfig,
    occupied: &[PartitionState],
) -> BackfillResult {
    Algorithm2.backfill(queue, cfg, occupied)
}

/// Runs Algorithm 2: balanced assignment of requests to micro-batches.
/// Shorthand for [`crate::scheduler::Algorithm2`]'s [`Scheduler::plan`].
///
/// # Panics
///
/// Panics if `num_micro_batches` or `max_requests_per_micro_batch` is zero.
pub fn batch_requests(queue: &[Request], cfg: &BatchingConfig) -> BatchingResult {
    Algorithm2.plan(queue, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn cfg(n_ub: usize, ubs: usize, cache: u64) -> BatchingConfig {
        BatchingConfig {
            num_micro_batches: n_ub,
            max_requests_per_micro_batch: ubs,
            max_scheduled_requests: usize::MAX,
            cache_tokens_per_micro_batch: cache,
        }
    }

    fn req(id: u64, len: u64) -> Request {
        Request::new(id, len, 32)
    }

    #[test]
    fn balances_tokens_across_micro_batches() {
        let reqs = WorkloadSpec::mtbench().sample_requests(256, 32, 11);
        let result = batch_requests(&reqs, &cfg(8, 32, u64::MAX));
        assert_eq!(result.scheduled_requests(), 256);
        assert!(result.aborted.is_empty());
        assert_eq!(result.micro_batches.len(), 8);
        let (min, max) = result.prompt_token_spread();
        assert!(
            max - min <= WorkloadSpec::mtbench().max_prompt_len,
            "greedy balancing keeps the spread below one max-length request: {min}..{max}"
        );
    }

    #[test]
    fn respects_per_micro_batch_request_cap() {
        let reqs: Vec<Request> = (0..20).map(|i| req(i, 100)).collect();
        let result = batch_requests(&reqs, &cfg(4, 4, u64::MAX));
        // Only 4×4 = 16 requests fit; the remaining 4 are aborted.
        assert_eq!(result.scheduled_requests(), 16);
        assert_eq!(result.aborted.len(), 4);
        assert!(result.micro_batches.iter().all(|mb| mb.len() <= 4));
    }

    #[test]
    fn respects_cache_size_limit() {
        let reqs: Vec<Request> = (0..8).map(|i| req(i, 1000)).collect();
        // Cache only fits one 1000-token prompt plus generation per micro-batch.
        let result = batch_requests(&reqs, &cfg(2, 8, 1100));
        assert_eq!(result.scheduled_requests(), 2);
        assert_eq!(result.aborted.len(), 6);
        for mb in &result.micro_batches {
            assert!(mb.max_cache_tokens() <= 1100);
        }
    }

    #[test]
    fn longest_requests_are_spread_over_different_micro_batches() {
        let mut reqs: Vec<Request> = (0..4).map(|i| req(i, 400)).collect();
        reqs.extend((4..12).map(|i| req(i, 10)));
        let result = batch_requests(&reqs, &cfg(4, 3, u64::MAX));
        // The four long requests must land in four different micro-batches.
        let long_counts: Vec<usize> = result
            .micro_batches
            .iter()
            .map(|mb| mb.requests.iter().filter(|r| r.input_len == 400).count())
            .collect();
        assert!(
            long_counts.iter().all(|&c| c <= 1),
            "long requests clumped: {long_counts:?}"
        );
    }

    #[test]
    fn single_request_exceeding_cache_limit_aborts_without_panicking() {
        // One request whose prompt alone blows the per-micro-batch KV budget must be
        // deferred (the paper's "abort"), not crash the batcher.
        let giant = req(0, 10_000);
        let result = batch_requests(&[giant], &cfg(4, 8, 1000));
        assert!(result.micro_batches.is_empty());
        assert_eq!(result.aborted, vec![giant]);
        // Mixed with schedulable requests, only the oversized one is aborted.
        let queue = [giant, req(1, 100), req(2, 200)];
        let result = batch_requests(&queue, &cfg(4, 8, 1000));
        assert_eq!(result.scheduled_requests(), 2);
        assert_eq!(result.aborted, vec![giant]);
    }

    #[test]
    fn spills_to_another_open_micro_batch_when_token_min_lacks_cache_headroom() {
        // Regression: p0's cache is saturated by a giant prompt (900 + 150 gen =
        // 1050 of 1100), while p1 holds more prompt tokens (two 500-token fillers)
        // but almost no generation, so it keeps cache headroom. The final small
        // request's token-minimal micro-batch is p0 — which cannot hold it — and
        // the fixed algorithm must spill it to p1 instead of aborting.
        let giant = Request::new(0, 900, 150);
        let fillers: Vec<Request> = (1..=2).map(|id| Request::new(id, 500, 1)).collect();
        let small = Request::new(3, 60, 1);
        let queue = [giant, fillers[0], fillers[1], small];
        let result = batch_requests(&queue, &cfg(2, 8, 1100));
        assert!(
            result.aborted.is_empty(),
            "small request must spill to the open micro-batch with headroom: {:?}",
            result.aborted
        );
        assert_eq!(result.scheduled_requests(), 4);
        // The spill lands next to the fillers, not the giant.
        let small_mb = result
            .micro_batches
            .iter()
            .find(|mb| mb.requests.iter().any(|r| r.id == 3))
            .expect("small request scheduled");
        assert!(small_mb.requests.iter().any(|r| r.id == 1));
        for mb in &result.micro_batches {
            assert!(mb.max_cache_tokens() <= 1100);
        }
    }

    #[test]
    fn backfill_extends_partially_occupied_micro_batches() {
        // One micro-batch already decodes 2 requests worth 700 cache tokens; the
        // other is empty. Backfill must respect both the existing reservation and
        // the balance criterion.
        let occupied = [
            PartitionState {
                requests: 2,
                prompt_tokens: 600,
                cache_tokens: 700,
            },
            PartitionState::default(),
        ];
        let queue: Vec<Request> = (0..3).map(|id| Request::new(id, 200, 100)).collect();
        let fill = backfill_requests(&queue, &cfg(2, 4, 1000), &occupied);
        // All three fit the empty micro-batch (3 × 300 = 900 ≤ 1000); the occupied
        // one can only take one more (700 + 300 = 1000).
        assert_eq!(fill.admitted(), 3);
        assert!(fill.deferred.is_empty());
        assert!(
            fill.assignments[1].len() >= 2,
            "balance favours the empty one"
        );
        let p0_new: u64 = fill.assignments[0].iter().map(Request::max_context).sum();
        assert!(occupied[0].cache_tokens + p0_new <= 1000);
    }

    #[test]
    fn backfill_counts_existing_occupancy_against_the_total_cap() {
        let occupied = [PartitionState {
            requests: 3,
            prompt_tokens: 300,
            cache_tokens: 400,
        }];
        let mut config = cfg(1, 8, u64::MAX);
        config.max_scheduled_requests = 4;
        let queue: Vec<Request> = (0..3).map(|id| Request::new(id, 100, 10)).collect();
        let fill = backfill_requests(&queue, &config, &occupied);
        assert_eq!(fill.admitted(), 1);
        assert_eq!(fill.deferred.len(), 2);
    }

    #[test]
    fn all_equal_length_requests_produce_balanced_micro_batches() {
        // 32 requests with a per-micro-batch capacity of 8 need only 4 of the 8
        // configured micro-batches: an underfilled batch concentrates into few,
        // full micro-batches (the pipeline depth was sized for a full batch)
        // instead of spreading thin, and balances perfectly within them.
        let reqs: Vec<Request> = (0..32).map(|i| req(i, 64)).collect();
        let result = batch_requests(&reqs, &cfg(8, 8, u64::MAX));
        assert_eq!(result.scheduled_requests(), 32);
        assert!(result.aborted.is_empty());
        assert_eq!(result.micro_batches.len(), 4);
        assert!(result.micro_batches.iter().all(|mb| mb.len() == 8));
        let (min, max) = result.prompt_token_spread();
        assert_eq!((min, max), (512, 512));
        // A saturated queue (64 requests = 8 × 8) opens every micro-batch — the
        // paper's Algorithm 2 setting.
        let reqs: Vec<Request> = (0..64).map(|i| req(i, 64)).collect();
        let result = batch_requests(&reqs, &cfg(8, 8, u64::MAX));
        assert_eq!(result.micro_batches.len(), 8);
        assert!(result.micro_batches.iter().all(|mb| mb.len() == 8));
    }

    #[test]
    fn total_request_cap_binds_before_per_micro_batch_caps() {
        // n_ub × ubs = 12, but the total cap (a non-divisible batch size) is 10.
        let reqs: Vec<Request> = (0..20).map(|i| req(i, 50)).collect();
        let mut config = cfg(3, 4, u64::MAX);
        config.max_scheduled_requests = 10;
        let result = batch_requests(&reqs, &config);
        assert_eq!(result.scheduled_requests(), 10);
        assert_eq!(result.aborted.len(), 10);
        assert!(result.micro_batches.iter().all(|mb| mb.len() <= 4));
    }

    #[test]
    fn empty_queue_produces_no_micro_batches() {
        let result = batch_requests(&[], &cfg(4, 8, 1000));
        assert!(result.micro_batches.is_empty());
        assert!(result.aborted.is_empty());
        assert_eq!(result.prompt_token_spread(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one micro-batch")]
    fn zero_micro_batches_panics() {
        batch_requests(&[], &cfg(0, 8, 1000));
    }

    #[test]
    fn validate_rejects_every_zero_limit() {
        let good = cfg(4, 8, 1000);
        assert_eq!(good.validate(), Ok(()));
        assert_eq!(
            cfg(0, 8, 1000).validate(),
            Err(BatchingConfigError::ZeroMicroBatches)
        );
        assert_eq!(
            cfg(4, 0, 1000).validate(),
            Err(BatchingConfigError::ZeroMicroBatchCapacity)
        );
        assert_eq!(
            cfg(4, 8, 0).validate(),
            Err(BatchingConfigError::ZeroCacheBudget)
        );
        let mut zero_total = cfg(4, 8, 1000);
        zero_total.max_scheduled_requests = 0;
        assert_eq!(
            zero_total.validate(),
            Err(BatchingConfigError::ZeroScheduledRequests)
        );
        assert!(BatchingConfigError::ZeroCacheBudget
            .to_string()
            .contains("cache_tokens_per_micro_batch"));
    }

    #[test]
    fn micro_batch_accessors() {
        let mb = MicroBatch {
            requests: vec![req(0, 10), req(1, 20)],
        };
        assert_eq!(mb.len(), 2);
        assert!(!mb.is_empty());
        assert_eq!(mb.prompt_tokens(), 30);
        assert_eq!(mb.max_cache_tokens(), 30 + 64);
    }
}
