//! The discrete-event engine: plays a [`TaskGraph`] on the four serial lanes and
//! reports the resulting timeline, makespan and per-lane utilization / bubble
//! statistics used throughout the evaluation (e.g. the Fig. 6 schedule comparison).

use crate::task::{Lane, SimError, TaskGraph, TaskId, TaskKind};
use moe_hardware::Seconds;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One executed task on the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// The task that ran.
    pub task: TaskId,
    /// Lane it ran on.
    pub lane: Lane,
    /// Semantic kind.
    pub kind: TaskKind,
    /// Label copied from the task.
    pub label: String,
    /// Start time.
    pub start: Seconds,
    /// Finish time.
    pub finish: Seconds,
}

/// Busy/idle statistics for one lane. `Default` is the all-zero record of a lane
/// that executed nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaneStats {
    /// Total time the lane spent executing tasks.
    pub busy: Seconds,
    /// Idle time between the lane's first task start and its last task finish
    /// (the "bubbles" highlighted in Fig. 6).
    pub bubble: Seconds,
    /// Busy time divided by the overall makespan (0 when the makespan is 0).
    pub utilization: f64,
    /// Number of tasks executed on the lane.
    pub tasks: usize,
}

/// The result of simulating a task graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Every executed task, sorted by start time.
    pub timeline: Vec<TimelineEntry>,
    /// Completion time of the last task.
    pub makespan: Seconds,
    /// Per-lane statistics.
    pub lanes: HashMap<Lane, LaneStats>,
    /// Total busy time per task kind (across lanes).
    pub kind_busy: HashMap<TaskKind, Seconds>,
}

impl SimulationResult {
    /// Statistics of one lane (zeroed if the lane executed nothing).
    pub fn lane(&self, lane: Lane) -> LaneStats {
        self.lanes.get(&lane).copied().unwrap_or_default()
    }

    /// Busy time of a task kind.
    pub fn kind_time(&self, kind: TaskKind) -> Seconds {
        self.kind_busy.get(&kind).copied().unwrap_or(Seconds::ZERO)
    }

    /// Entries of one lane in start-time order.
    pub fn lane_timeline(&self, lane: Lane) -> Vec<&TimelineEntry> {
        self.timeline.iter().filter(|e| e.lane == lane).collect()
    }

    /// Finish time of a specific task, if it ran.
    pub fn finish_of(&self, task: TaskId) -> Option<Seconds> {
        self.timeline
            .iter()
            .find(|e| e.task == task)
            .map(|e| e.finish)
    }
}

/// Simulates the execution of `graph` and returns the timeline and statistics.
///
/// Each lane executes its tasks in enqueue order; a task starts as soon as both the
/// lane is free and all its dependencies have finished (asynchronous launch with
/// stream semantics, matching the CUDA-stream execution model the paper's runtime
/// relies on).
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the graph contains a circular wait.
pub fn simulate(graph: &TaskGraph) -> Result<SimulationResult, SimError> {
    let total = graph.len();
    let mut finish_time: Vec<Option<Seconds>> = vec![None; total];
    let mut lane_free: HashMap<Lane, Seconds> = HashMap::new();
    let mut lane_cursor: HashMap<Lane, usize> = HashMap::new();
    let lane_queues: HashMap<Lane, Vec<TaskId>> = Lane::all()
        .into_iter()
        .map(|l| (l, graph.lane_queue(l)))
        .collect();

    let mut timeline = Vec::with_capacity(total);
    let mut completed = 0usize;

    while completed < total {
        let mut progressed = false;
        for lane in Lane::all() {
            let queue = &lane_queues[&lane];
            loop {
                let cursor = lane_cursor.entry(lane).or_insert(0);
                if *cursor >= queue.len() {
                    break;
                }
                let task_id = queue[*cursor];
                let task = graph.task(task_id).expect("queue ids are valid");
                // All dependencies finished?
                let mut deps_ready = Seconds::ZERO;
                let mut ready = true;
                for dep in &task.deps {
                    match finish_time[dep.0] {
                        Some(t) => deps_ready = deps_ready.max(t),
                        None => {
                            ready = false;
                            break;
                        }
                    }
                }
                if !ready {
                    break; // head of this lane is blocked; the lane stalls (FIFO)
                }
                let lane_available = lane_free.get(&lane).copied().unwrap_or(Seconds::ZERO);
                let start = lane_available.max(deps_ready);
                let finish = start + task.duration;
                finish_time[task_id.0] = Some(finish);
                lane_free.insert(lane, finish);
                timeline.push(TimelineEntry {
                    task: task_id,
                    lane,
                    kind: task.kind,
                    label: task.label.clone(),
                    start,
                    finish,
                });
                *lane_cursor.get_mut(&lane).expect("cursor inserted above") += 1;
                completed += 1;
                progressed = true;
            }
        }
        if !progressed && completed < total {
            return Err(SimError::Deadlock { completed, total });
        }
    }

    timeline.sort_by_key(|e| (e.start.key(), e.task.0));

    let makespan = timeline
        .iter()
        .map(|e| e.finish)
        .fold(Seconds::ZERO, Seconds::max);

    let mut lanes = HashMap::new();
    for lane in Lane::all() {
        let entries: Vec<&TimelineEntry> = timeline.iter().filter(|e| e.lane == lane).collect();
        if entries.is_empty() {
            continue;
        }
        let busy: Seconds = entries.iter().map(|e| e.finish - e.start).sum();
        let first = entries
            .iter()
            .map(|e| e.start)
            .fold(Seconds::from_secs(f64::INFINITY), Seconds::min);
        let last = entries
            .iter()
            .map(|e| e.finish)
            .fold(Seconds::ZERO, Seconds::max);
        let span = last - first;
        let bubble = span - busy;
        let utilization = if makespan.is_zero() {
            0.0
        } else {
            busy.as_secs() / makespan.as_secs()
        };
        lanes.insert(
            lane,
            LaneStats {
                busy,
                bubble,
                utilization,
                tasks: entries.len(),
            },
        );
    }

    let mut kind_busy: HashMap<TaskKind, Seconds> = HashMap::new();
    for e in &timeline {
        let slot = kind_busy.entry(e.kind).or_insert(Seconds::ZERO);
        *slot += e.finish - e.start;
    }

    Ok(SimulationResult {
        timeline,
        makespan,
        lanes,
        kind_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> Seconds {
        Seconds::from_millis(v)
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let result = simulate(&TaskGraph::new()).unwrap();
        assert!(result.makespan.is_zero());
        assert!(result.timeline.is_empty());
        assert_eq!(result.lane(Lane::GpuCompute).tasks, 0);
    }

    #[test]
    fn independent_tasks_on_different_lanes_overlap() {
        let mut g = TaskGraph::new();
        g.add_task(
            Lane::GpuCompute,
            ms(10.0),
            TaskKind::PostAttention,
            "gpu",
            &[],
        )
        .unwrap();
        g.add_task(Lane::CpuCompute, ms(10.0), TaskKind::Attention, "cpu", &[])
            .unwrap();
        g.add_task(
            Lane::HostToDevice,
            ms(10.0),
            TaskKind::WeightTransfer,
            "w",
            &[],
        )
        .unwrap();
        let r = simulate(&g).unwrap();
        assert!(
            (r.makespan.as_millis() - 10.0).abs() < 1e-9,
            "perfect overlap expected"
        );
        for lane in [Lane::GpuCompute, Lane::CpuCompute, Lane::HostToDevice] {
            assert!((r.lane(lane).utilization - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_lane_tasks_serialize_in_fifo_order() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task(Lane::GpuCompute, ms(5.0), TaskKind::Other, "a", &[])
            .unwrap();
        let b = g
            .add_task(Lane::GpuCompute, ms(5.0), TaskKind::Other, "b", &[])
            .unwrap();
        let r = simulate(&g).unwrap();
        assert!((r.makespan.as_millis() - 10.0).abs() < 1e-9);
        assert!(r.finish_of(a).unwrap().as_millis() <= r.finish_of(b).unwrap().as_millis());
    }

    #[test]
    fn dependencies_across_lanes_are_respected() {
        let mut g = TaskGraph::new();
        let transfer = g
            .add_task(
                Lane::HostToDevice,
                ms(4.0),
                TaskKind::WeightTransfer,
                "w",
                &[],
            )
            .unwrap();
        let compute = g
            .add_task(
                Lane::GpuCompute,
                ms(3.0),
                TaskKind::PostAttention,
                "c",
                &[transfer],
            )
            .unwrap();
        let r = simulate(&g).unwrap();
        let t_entry = r.timeline.iter().find(|e| e.task == compute).unwrap();
        assert!((t_entry.start.as_millis() - 4.0).abs() < 1e-9);
        assert!((r.makespan.as_millis() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn head_of_line_blocking_stalls_a_lane() {
        // Lane GPU: [x (depends on slow CPU task), y (independent)].
        // FIFO stream semantics: y cannot jump ahead of x even though it is ready.
        let mut g = TaskGraph::new();
        let slow = g
            .add_task(Lane::CpuCompute, ms(10.0), TaskKind::Attention, "slow", &[])
            .unwrap();
        let x = g
            .add_task(Lane::GpuCompute, ms(1.0), TaskKind::Other, "x", &[slow])
            .unwrap();
        let y = g
            .add_task(Lane::GpuCompute, ms(1.0), TaskKind::Other, "y", &[])
            .unwrap();
        let r = simulate(&g).unwrap();
        let y_entry = r.timeline.iter().find(|e| e.task == y).unwrap();
        assert!(
            y_entry.start.as_millis() >= 11.0 - 1e-9,
            "y must wait behind x"
        );
        assert!(r.finish_of(x).unwrap().as_millis() <= y_entry.start.as_millis() + 1e-9);
    }

    #[test]
    fn bubbles_are_reported_for_gaps_within_a_lane() {
        let mut g = TaskGraph::new();
        let slow = g
            .add_task(Lane::CpuCompute, ms(10.0), TaskKind::Attention, "slow", &[])
            .unwrap();
        g.add_task(Lane::GpuCompute, ms(2.0), TaskKind::PreAttention, "a", &[])
            .unwrap();
        g.add_task(
            Lane::GpuCompute,
            ms(2.0),
            TaskKind::PostAttention,
            "c",
            &[slow],
        )
        .unwrap();
        let r = simulate(&g).unwrap();
        let gpu = r.lane(Lane::GpuCompute);
        assert!((gpu.busy.as_millis() - 4.0).abs() < 1e-9);
        assert!(
            (gpu.bubble.as_millis() - 8.0).abs() < 1e-9,
            "gap from t=2 to t=10"
        );
        assert_eq!(gpu.tasks, 2);
    }

    #[test]
    fn kind_busy_accumulates_across_lanes() {
        let mut g = TaskGraph::new();
        g.add_task(
            Lane::HostToDevice,
            ms(3.0),
            TaskKind::WeightTransfer,
            "w1",
            &[],
        )
        .unwrap();
        g.add_task(
            Lane::HostToDevice,
            ms(2.0),
            TaskKind::WeightTransfer,
            "w2",
            &[],
        )
        .unwrap();
        g.add_task(Lane::GpuCompute, ms(1.0), TaskKind::PreAttention, "a", &[])
            .unwrap();
        let r = simulate(&g).unwrap();
        assert!((r.kind_time(TaskKind::WeightTransfer).as_millis() - 5.0).abs() < 1e-9);
        assert!(r.kind_time(TaskKind::KvTransfer).is_zero());
    }

    #[test]
    fn interleaved_cross_lane_dependencies_always_complete() {
        // Because `add_task` only allows dependencies on earlier tasks, every buildable
        // graph is acyclic even with FIFO head-of-line blocking — processing tasks in
        // insertion order is always feasible. Check a densely interleaved ping-pong
        // pattern completes with the expected makespan.
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for i in 0..16 {
            let lane = if i % 2 == 0 {
                Lane::GpuCompute
            } else {
                Lane::CpuCompute
            };
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(
                g.add_task(lane, ms(1.0), TaskKind::Other, format!("t{i}"), &deps)
                    .unwrap(),
            );
        }
        let r = simulate(&g).unwrap();
        assert_eq!(r.timeline.len(), 16);
        assert!(
            (r.makespan.as_millis() - 16.0).abs() < 1e-9,
            "strict chain serializes fully"
        );
    }

    #[test]
    fn timeline_is_sorted_by_start_time() {
        let mut g = TaskGraph::new();
        let w = g
            .add_task(
                Lane::HostToDevice,
                ms(5.0),
                TaskKind::WeightTransfer,
                "w",
                &[],
            )
            .unwrap();
        g.add_task(
            Lane::GpuCompute,
            ms(1.0),
            TaskKind::PostAttention,
            "c",
            &[w],
        )
        .unwrap();
        g.add_task(Lane::CpuCompute, ms(1.0), TaskKind::Attention, "b", &[])
            .unwrap();
        let r = simulate(&g).unwrap();
        for pair in r.timeline.windows(2) {
            assert!(pair[0].start.as_secs() <= pair[1].start.as_secs());
        }
        assert_eq!(r.lane_timeline(Lane::GpuCompute).len(), 1);
    }
}
