//! Tasks, lanes and task graphs for the heterogeneous-node simulator.
//!
//! The decode-stage pipeline of the paper uses four serial execution *lanes*
//! (Fig. 6): the GPU compute stream, the CPU compute pool, and the two PCIe copy
//! directions (host→device and device→host). A schedule is a set of tasks, each
//! bound to one lane with a fixed duration, connected by dependency edges; each lane
//! executes its tasks strictly in the order they were enqueued (CUDA-stream
//! semantics), which is exactly what makes naive orderings leave bubbles.

use moe_hardware::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A serial execution lane of the simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// The GPU compute stream.
    GpuCompute,
    /// The CPU compute pool (all cores, treated as one serial attention worker pool).
    CpuCompute,
    /// PCIe copies from host (CPU) memory to device (GPU) memory.
    HostToDevice,
    /// PCIe copies from device memory to host memory.
    DeviceToHost,
}

impl Lane {
    /// All lanes, in display order.
    pub fn all() -> [Lane; 4] {
        [
            Lane::GpuCompute,
            Lane::CpuCompute,
            Lane::HostToDevice,
            Lane::DeviceToHost,
        ]
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Lane::GpuCompute => "GPU",
            Lane::CpuCompute => "CPU",
            Lane::HostToDevice => "HtoD",
            Lane::DeviceToHost => "DtoH",
        };
        f.write_str(s)
    }
}

/// Semantic category of a task, used for per-kind statistics and the Fig. 6 style
/// timeline output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// GPU pre-attention work (layer norm + QKV projection), `A_x` in Fig. 6.
    PreAttention,
    /// Attention core (softmax over the KV cache), `B_x` in Fig. 6.
    Attention,
    /// GPU post-attention work (O projection + router + MoE FFN), `C_x` in Fig. 6.
    PostAttention,
    /// Weight page transfer from host to device.
    WeightTransfer,
    /// KV-cache block transfer from host to device.
    KvTransfer,
    /// Hidden-state upload from host to device (`Hidden HtoD`, transfer D2).
    HiddenTransfer,
    /// QKV offload from device to host (`QKV DtoH`, transfer D1).
    QkvOffload,
    /// Host-side copy from pageable DRAM into pinned staging memory.
    PinnedStaging,
    /// Anything else (prologue, synchronization, prefill chunks).
    Other,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskKind::PreAttention => "pre-attn",
            TaskKind::Attention => "attention",
            TaskKind::PostAttention => "post-attn",
            TaskKind::WeightTransfer => "weights",
            TaskKind::KvTransfer => "kv-transfer",
            TaskKind::HiddenTransfer => "hidden-h2d",
            TaskKind::QkvOffload => "qkv-d2h",
            TaskKind::PinnedStaging => "pinned-copy",
            TaskKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Identifier of a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// A single unit of work bound to a lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// The task's id (its index in the graph).
    pub id: TaskId,
    /// The lane the task executes on.
    pub lane: Lane,
    /// Execution time of the task once started.
    pub duration: Seconds,
    /// Tasks that must finish before this one may start (in addition to earlier tasks
    /// on the same lane).
    pub deps: Vec<TaskId>,
    /// Semantic category.
    pub kind: TaskKind,
    /// Human-readable label, e.g. `"C(2,3)"` for post-attention of layer 2,
    /// micro-batch 3.
    pub label: String,
}

/// Errors produced while building or simulating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A dependency refers to a task id that has not been added yet.
    UnknownDependency {
        /// The task declaring the dependency.
        task: usize,
        /// The missing dependency id.
        dependency: usize,
    },
    /// The graph cannot make progress (circular wait across lanes and dependencies).
    Deadlock {
        /// Number of tasks that completed before the deadlock.
        completed: usize,
        /// Total number of tasks.
        total: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownDependency { task, dependency } => {
                write!(f, "task {task} depends on unknown task {dependency}")
            }
            SimError::Deadlock { completed, total } => write!(
                f,
                "schedule deadlocked after {completed} of {total} tasks (dependency cycle across lanes)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// A buildable set of tasks with lane bindings and dependencies.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task; dependencies must reference previously added tasks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] if a dependency id is out of range.
    pub fn add_task(
        &mut self,
        lane: Lane,
        duration: Seconds,
        kind: TaskKind,
        label: impl Into<String>,
        deps: &[TaskId],
    ) -> Result<TaskId, SimError> {
        let id = TaskId(self.tasks.len());
        for dep in deps {
            if dep.0 >= self.tasks.len() {
                return Err(SimError::UnknownDependency {
                    task: id.0,
                    dependency: dep.0,
                });
            }
        }
        self.tasks.push(Task {
            id,
            lane,
            duration,
            deps: deps.to_vec(),
            kind,
            label: label.into(),
        });
        Ok(id)
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks in insertion order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks up a task.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0)
    }

    /// Tasks bound to a given lane, in enqueue (FIFO) order.
    pub fn lane_queue(&self, lane: Lane) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.lane == lane)
            .map(|t| t.id)
            .collect()
    }

    /// Sum of all task durations on a lane (lower bound on that lane's busy time).
    pub fn lane_work(&self, lane: Lane) -> Seconds {
        self.tasks
            .iter()
            .filter(|t| t.lane == lane)
            .map(|t| t.duration)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_task_assigns_sequential_ids() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task(
                Lane::GpuCompute,
                Seconds::from_millis(1.0),
                TaskKind::PreAttention,
                "a",
                &[],
            )
            .unwrap();
        let b = g
            .add_task(
                Lane::CpuCompute,
                Seconds::from_millis(2.0),
                TaskKind::Attention,
                "b",
                &[a],
            )
            .unwrap();
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.task(b).unwrap().deps, vec![a]);
        assert!(g.task(TaskId(5)).is_none());
    }

    #[test]
    fn forward_dependencies_are_rejected() {
        let mut g = TaskGraph::new();
        let err = g
            .add_task(
                Lane::GpuCompute,
                Seconds::ZERO,
                TaskKind::Other,
                "x",
                &[TaskId(3)],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::UnknownDependency { dependency: 3, .. }
        ));
    }

    #[test]
    fn lane_queue_preserves_fifo_order_and_filters_lane() {
        let mut g = TaskGraph::new();
        let a = g
            .add_task(
                Lane::HostToDevice,
                Seconds::from_millis(1.0),
                TaskKind::WeightTransfer,
                "w0",
                &[],
            )
            .unwrap();
        let _b = g
            .add_task(
                Lane::GpuCompute,
                Seconds::from_millis(1.0),
                TaskKind::PostAttention,
                "c0",
                &[],
            )
            .unwrap();
        let c = g
            .add_task(
                Lane::HostToDevice,
                Seconds::from_millis(1.0),
                TaskKind::HiddenTransfer,
                "h1",
                &[],
            )
            .unwrap();
        assert_eq!(g.lane_queue(Lane::HostToDevice), vec![a, c]);
        assert_eq!(g.lane_queue(Lane::DeviceToHost), vec![]);
    }

    #[test]
    fn lane_work_sums_durations() {
        let mut g = TaskGraph::new();
        g.add_task(
            Lane::GpuCompute,
            Seconds::from_millis(3.0),
            TaskKind::Other,
            "x",
            &[],
        )
        .unwrap();
        g.add_task(
            Lane::GpuCompute,
            Seconds::from_millis(4.0),
            TaskKind::Other,
            "y",
            &[],
        )
        .unwrap();
        g.add_task(
            Lane::CpuCompute,
            Seconds::from_millis(9.0),
            TaskKind::Other,
            "z",
            &[],
        )
        .unwrap();
        assert!((g.lane_work(Lane::GpuCompute).as_millis() - 7.0).abs() < 1e-9);
        assert!((g.lane_work(Lane::CpuCompute).as_millis() - 9.0).abs() < 1e-9);
        assert!(g.lane_work(Lane::DeviceToHost).is_zero());
    }

    #[test]
    fn display_of_lanes_kinds_and_errors() {
        assert_eq!(Lane::GpuCompute.to_string(), "GPU");
        assert_eq!(Lane::HostToDevice.to_string(), "HtoD");
        assert_eq!(TaskKind::WeightTransfer.to_string(), "weights");
        assert_eq!(Lane::all().len(), 4);
        let e = SimError::Deadlock {
            completed: 2,
            total: 5,
        };
        assert!(e.to_string().contains("2 of 5"));
    }
}
