//! Discrete-event simulator for a heterogeneous CPU/GPU/PCIe node.
//!
//! This crate stands in for the hardware the paper evaluates on: schedules
//! (CGOPipe and the baselines) are expressed as [`TaskGraph`]s over four serial
//! lanes — GPU compute, CPU compute, host→device and device→host copies — and
//! [`simulate`] plays them with CUDA-stream (FIFO per lane, cross-lane dependency)
//! semantics, reporting the makespan, per-lane utilization and the pipeline bubbles
//! that Fig. 6 of the paper visualizes.
//!
//! # Examples
//!
//! ```
//! use moe_hardware::Seconds;
//! use moe_sim::{simulate, Lane, TaskGraph, TaskKind};
//!
//! # fn main() -> Result<(), moe_sim::SimError> {
//! let mut g = TaskGraph::new();
//! let weights = g.add_task(
//!     Lane::HostToDevice,
//!     Seconds::from_millis(8.0),
//!     TaskKind::WeightTransfer,
//!     "layer-1 weights",
//!     &[],
//! )?;
//! let ffn = g.add_task(
//!     Lane::GpuCompute,
//!     Seconds::from_millis(3.0),
//!     TaskKind::PostAttention,
//!     "layer-1 FFN",
//!     &[weights],
//! )?;
//! let result = simulate(&g)?;
//! assert_eq!(result.finish_of(ffn).unwrap().as_millis(), 11.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod task;

pub use engine::{simulate, LaneStats, SimulationResult, TimelineEntry};
pub use task::{Lane, SimError, Task, TaskGraph, TaskId, TaskKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use moe_hardware::Seconds;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Builds a random acyclic task graph with backward dependencies.
    fn random_graph(seed: u64, n: usize) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let lanes = Lane::all();
        let mut g = TaskGraph::new();
        for i in 0..n {
            let lane = lanes[rng.gen_range(0..lanes.len())];
            let duration = Seconds::from_micros(rng.gen_range(1.0..500.0));
            let mut deps = Vec::new();
            if i > 0 {
                for _ in 0..rng.gen_range(0..3usize) {
                    deps.push(TaskId(rng.gen_range(0..i)));
                }
                deps.sort();
                deps.dedup();
            }
            g.add_task(lane, duration, TaskKind::Other, format!("t{i}"), &deps)
                .unwrap();
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn every_backward_dependency_graph_completes(seed in 0u64..10_000, n in 1usize..80) {
            let g = random_graph(seed, n);
            let r = simulate(&g).unwrap();
            prop_assert_eq!(r.timeline.len(), n);
        }

        #[test]
        fn makespan_bounds_hold(seed in 0u64..10_000, n in 1usize..80) {
            let g = random_graph(seed, n);
            let r = simulate(&g).unwrap();
            // Lower bound: the busiest lane's total work. Upper bound: sum of all durations.
            let max_lane_work = Lane::all()
                .into_iter()
                .map(|l| g.lane_work(l).as_secs())
                .fold(0.0f64, f64::max);
            let total_work: f64 = g.tasks().iter().map(|t| t.duration.as_secs()).sum();
            prop_assert!(r.makespan.as_secs() >= max_lane_work - 1e-12);
            prop_assert!(r.makespan.as_secs() <= total_work + 1e-12);
        }

        #[test]
        fn dependencies_and_lane_order_respected(seed in 0u64..10_000, n in 2usize..80) {
            let g = random_graph(seed, n);
            let r = simulate(&g).unwrap();
            let finish = |id: TaskId| r.finish_of(id).unwrap().as_secs();
            let start_of = |id: TaskId| {
                r.timeline.iter().find(|e| e.task == id).unwrap().start.as_secs()
            };
            for task in g.tasks() {
                for dep in &task.deps {
                    prop_assert!(finish(*dep) <= start_of(task.id) + 1e-12,
                        "dependency must finish before dependent starts");
                }
            }
            // FIFO order within each lane.
            for lane in Lane::all() {
                let q = g.lane_queue(lane);
                for pair in q.windows(2) {
                    prop_assert!(finish(pair[0]) <= start_of(pair[1]) + 1e-12);
                }
            }
        }

        #[test]
        fn lane_utilization_is_a_fraction(seed in 0u64..10_000, n in 1usize..80) {
            let g = random_graph(seed, n);
            let r = simulate(&g).unwrap();
            for lane in Lane::all() {
                let stats = r.lane(lane);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.utilization));
                prop_assert!(stats.busy.as_secs() <= r.makespan.as_secs() + 1e-12);
            }
        }
    }
}
