//! A functional, pipelined offloading engine for the tiny reference MoE model.
//!
//! This is the executable counterpart of CGOPipe: real (small) tensors flow through
//! the same task structure the paper describes — GPU pre-attention, QKV offload,
//! CPU attention over the KV cache, hidden-state upload, GPU post-attention, with
//! paged weight prefetch double-buffered two layers ahead — driven by the
//! multi-threaded [`OffloadExecutor`]. Its output is checked against the purely
//! sequential [`ReferenceMoeModel`] forward pass, which validates that the pipeline's
//! dependency structure is correct (no stale hidden states, no missing weights, no
//! KV-cache races).

use crate::executor::{JobId, LaneId, OffloadExecutor};
use moe_hardware::ByteSize;
use moe_memory::{
    BufferSlot, MemoryPool, PagedKvCache, PagedWeightStore, SequenceId, WeightLayout,
};
use moe_model::reference::{argmax, ReferenceMoeModel, SequenceCache};
use moe_model::MoeModelConfig;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors produced by the pipelined engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The configuration or inputs were invalid.
    InvalidInput {
        /// Explanation of the violated requirement.
        message: String,
    },
    /// The memory substrate rejected an allocation or protocol step.
    Memory {
        /// The underlying memory error, formatted.
        message: String,
    },
    /// One or more pipeline tasks failed.
    TaskFailed {
        /// Collected task error messages.
        messages: Vec<String>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            RuntimeError::Memory { message } => write!(f, "memory error: {message}"),
            RuntimeError::TaskFailed { messages } => {
                write!(
                    f,
                    "{} pipeline task(s) failed: {}",
                    messages.len(),
                    messages.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<moe_memory::MemoryError> for RuntimeError {
    fn from(e: moe_memory::MemoryError) -> Self {
        RuntimeError::Memory {
            message: e.to_string(),
        }
    }
}

/// Configuration of the pipelined engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of sequences processed per micro-batch.
    pub micro_batch_size: usize,
    /// Number of pages each layer's streamed weights are split into.
    pub weight_pages_per_layer: usize,
    /// Fraction of weights held statically in the simulated GPU pool.
    pub weights_gpu_ratio: f64,
    /// Simulated GPU memory capacity.
    pub gpu_memory: ByteSize,
    /// Simulated host memory capacity.
    pub cpu_memory: ByteSize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            micro_batch_size: 2,
            weight_pages_per_layer: 4,
            weights_gpu_ratio: 0.0,
            gpu_memory: ByteSize::from_mib(64.0),
            cpu_memory: ByteSize::from_mib(512.0),
        }
    }
}

/// Result of a pipelined generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationOutput {
    /// Generated token ids, one vector per input sequence.
    pub tokens: Vec<Vec<u32>>,
    /// Bytes moved host→device (weight pages + hidden states).
    pub h2d_bytes: ByteSize,
    /// Bytes moved device→host (QKV offloads).
    pub d2h_bytes: ByteSize,
    /// Total pipeline jobs executed.
    pub jobs_executed: u64,
    /// Peak simulated GPU pool usage.
    pub gpu_peak: ByteSize,
}

/// The pipelined offloading engine.
#[derive(Debug)]
pub struct PipelinedMoeEngine {
    model: Arc<ReferenceMoeModel>,
    config: EngineConfig,
}

struct StepState {
    hidden: Vec<Vec<f32>>,
    qkv: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)>,
    attn: Vec<Vec<f32>>,
    logits: Vec<Vec<f32>>,
}

impl PipelinedMoeEngine {
    /// Creates an engine around a reference model.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidInput`] for nonsensical configurations.
    pub fn new(model: ReferenceMoeModel, config: EngineConfig) -> Result<Self, RuntimeError> {
        if config.micro_batch_size == 0 {
            return Err(RuntimeError::InvalidInput {
                message: "micro_batch_size must be at least 1".to_owned(),
            });
        }
        if config.weight_pages_per_layer == 0 {
            return Err(RuntimeError::InvalidInput {
                message: "weight_pages_per_layer must be at least 1".to_owned(),
            });
        }
        if !(0.0..=1.0).contains(&config.weights_gpu_ratio) {
            return Err(RuntimeError::InvalidInput {
                message: format!(
                    "weights_gpu_ratio must be in [0,1], got {}",
                    config.weights_gpu_ratio
                ),
            });
        }
        Ok(PipelinedMoeEngine {
            model: Arc::new(model),
            config,
        })
    }

    /// The model configuration.
    pub fn model_config(&self) -> &MoeModelConfig {
        self.model.config()
    }

    /// Generates `gen_len` tokens greedily for every prompt, running the decode stage
    /// through the CGOPipe-style pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/invalid prompts, memory protocol violations, or
    /// failed pipeline tasks.
    pub fn generate(
        &self,
        prompts: &[Vec<u32>],
        gen_len: usize,
    ) -> Result<GenerationOutput, RuntimeError> {
        if prompts.is_empty() {
            return Err(RuntimeError::InvalidInput {
                message: "need at least one prompt".to_owned(),
            });
        }
        if prompts.iter().any(Vec::is_empty) {
            return Err(RuntimeError::InvalidInput {
                message: "prompts must be non-empty".to_owned(),
            });
        }
        let cfg = self.model.config().clone();
        if prompts.iter().flatten().any(|&t| t >= cfg.vocab_size) {
            return Err(RuntimeError::InvalidInput {
                message: format!(
                    "prompt token out of vocabulary (vocab size {})",
                    cfg.vocab_size
                ),
            });
        }

        // --- memory substrate -------------------------------------------------------
        let gpu_pool = MemoryPool::new("sim-gpu", self.config.gpu_memory);
        let cpu_pool = MemoryPool::new("sim-cpu", self.config.cpu_memory);
        let pinned_pool = MemoryPool::new("sim-pinned", self.config.cpu_memory);
        let layout = WeightLayout {
            num_layers: cfg.num_layers as usize,
            layer_bytes: cfg.layer_weight_bytes(),
            gpu_static_fraction: self.config.weights_gpu_ratio,
            pages_per_layer: self.config.weight_pages_per_layer,
        };
        let weight_store = Arc::new(Mutex::new(PagedWeightStore::new(
            layout,
            gpu_pool.clone(),
            cpu_pool.clone(),
            pinned_pool,
        )?));
        let mut kv_accounting = PagedKvCache::new(cpu_pool.clone(), 16, cfg.kv_bytes_per_token());

        // --- prefill (sequential, as in the paper prefill is not pipelined further) --
        let num_seqs = prompts.len();
        let mut caches: Vec<SequenceCache> = Vec::with_capacity(num_seqs);
        let mut last_logits: Vec<Vec<f32>> = Vec::with_capacity(num_seqs);
        for (s, prompt) in prompts.iter().enumerate() {
            let mut cache = SequenceCache::new(&cfg);
            let mut logits = Vec::new();
            for &token in prompt {
                logits = self.model.forward_token(token, &mut cache).map_err(|e| {
                    RuntimeError::TaskFailed {
                        messages: vec![e.to_string()],
                    }
                })?;
            }
            kv_accounting.add_sequence(SequenceId(s as u64), prompt.len() as u64)?;
            caches.push(cache);
            last_logits.push(logits);
        }

        // --- pipelined decode --------------------------------------------------------
        let executor = OffloadExecutor::new();
        let h2d_bytes = Arc::new(AtomicU64::new(0));
        let d2h_bytes = Arc::new(AtomicU64::new(0));
        let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let caches = Arc::new(Mutex::new(caches));
        // Which layer currently occupies each of the two GPU prefetch buffer slots;
        // persists across decode steps (the tail layers of step t are evicted by the
        // head layers of step t+1, exactly like the steady-state of Algorithm 1).
        let slot_occupancy: Arc<Mutex<[Option<usize>; 2]>> = Arc::new(Mutex::new([None, None]));

        let mut outputs: Vec<Vec<u32>> = vec![Vec::with_capacity(gen_len); num_seqs];
        let micro_batches: Vec<Vec<usize>> = (0..num_seqs)
            .collect::<Vec<_>>()
            .chunks(self.config.micro_batch_size)
            .map(<[usize]>::to_vec)
            .collect();

        for step in 0..gen_len {
            // Greedy next token from the previous logits.
            let next_tokens: Vec<u32> = last_logits.iter().map(|l| argmax(l)).collect();
            for (s, &t) in next_tokens.iter().enumerate() {
                outputs[s].push(t);
                kv_accounting.append_token(SequenceId(s as u64))?;
            }
            if step + 1 == gen_len {
                break; // no need to run another forward pass for logits we discard
            }

            let state = Arc::new(Mutex::new(StepState {
                hidden: next_tokens
                    .iter()
                    .map(|&t| self.model.embed(t).expect("token validated against vocab"))
                    .collect(),
                qkv: vec![(Vec::new(), Vec::new(), Vec::new()); num_seqs],
                attn: vec![Vec::new(); num_seqs],
                logits: vec![Vec::new(); num_seqs],
            }));

            self.submit_decode_step(
                &executor,
                &state,
                &caches,
                &micro_batches,
                &weight_store,
                &slot_occupancy,
                &h2d_bytes,
                &d2h_bytes,
                &errors,
            );
            executor.wait_all();

            let failures = std::mem::take(&mut *errors.lock());
            if !failures.is_empty() {
                return Err(RuntimeError::TaskFailed { messages: failures });
            }
            last_logits = std::mem::take(&mut state.lock().logits);
        }

        let jobs = executor.submitted();
        executor.shutdown();
        Ok(GenerationOutput {
            tokens: outputs,
            h2d_bytes: ByteSize::from_bytes(h2d_bytes.load(Ordering::SeqCst)),
            d2h_bytes: ByteSize::from_bytes(d2h_bytes.load(Ordering::SeqCst)),
            jobs_executed: jobs,
            gpu_peak: gpu_pool.peak(),
        })
    }

    /// Submits all jobs of one decode step (all layers, all micro-batches) plus the
    /// final-norm/logits job, following the CGOPipe task structure.
    #[allow(clippy::too_many_arguments)]
    fn submit_decode_step(
        &self,
        executor: &OffloadExecutor,
        state: &Arc<Mutex<StepState>>,
        caches: &Arc<Mutex<Vec<SequenceCache>>>,
        micro_batches: &[Vec<usize>],
        weight_store: &Arc<Mutex<PagedWeightStore>>,
        slot_occupancy: &Arc<Mutex<[Option<usize>; 2]>>,
        h2d_bytes: &Arc<AtomicU64>,
        d2h_bytes: &Arc<AtomicU64>,
        errors: &Arc<Mutex<Vec<String>>>,
    ) {
        let cfg = self.model.config().clone();
        let num_layers = cfg.num_layers as usize;
        let nq = cfg.num_q_heads as usize;
        let hd = cfg.head_dim as usize;
        let top_k = cfg.top_k as usize;
        let qkv_bytes_per_seq = cfg.qkv_bytes(1).as_bytes();
        let hidden_bytes_per_seq = cfg.hidden_state_bytes(1).as_bytes();

        // Last post-attention job of each layer (double-buffer release dependency).
        let mut last_post_of_layer: Vec<Option<JobId>> = vec![None; num_layers];
        // Per-micro-batch post-attention job of the previous layer.
        let mut prev_post: Vec<Option<JobId>> = vec![None; micro_batches.len()];

        for layer_idx in 0..num_layers {
            // Weight prefetch job: release the layer that used this slot two layers
            // ago, then stream this layer's pages through pinned memory.
            let release_dep: Vec<JobId> = if layer_idx >= 2 {
                last_post_of_layer[layer_idx - 2].into_iter().collect()
            } else {
                Vec::new()
            };
            let store = Arc::clone(weight_store);
            let occupancy = Arc::clone(slot_occupancy);
            let bytes_counter = Arc::clone(h2d_bytes);
            let errs = Arc::clone(errors);
            let weights_job = executor.submit(LaneId::HostToDevice, &release_dep, move || {
                let mut store = store.lock();
                let slot = BufferSlot::for_layer(layer_idx);
                let slot_idx = usize::from(slot == BufferSlot::B);
                let mut occupancy = occupancy.lock();
                if let Some(occupant) = occupancy[slot_idx] {
                    if occupant != layer_idx {
                        if let Err(e) = store.release_layer(occupant) {
                            errs.lock().push(format!("release layer {occupant}: {e}"));
                            return;
                        }
                    }
                }
                occupancy[slot_idx] = Some(layer_idx);
                match store.plan_layer_prefetch(layer_idx, BufferSlot::for_layer(layer_idx)) {
                    Ok(transfers) => {
                        for t in transfers {
                            // Simulate the copy: touch a buffer of the page size.
                            let _staging = vec![0u8; (t.bytes.as_bytes() as usize).min(1 << 20)];
                            if t.to == moe_memory::PageLocation::GpuHbm {
                                bytes_counter.fetch_add(t.bytes.as_bytes(), Ordering::Relaxed);
                            }
                            if let Err(e) = store.complete_transfer(&t) {
                                errs.lock().push(format!("complete transfer: {e}"));
                                return;
                            }
                        }
                    }
                    Err(e) => errs.lock().push(format!("prefetch layer {layer_idx}: {e}")),
                }
            });

            for (mb_idx, members) in micro_batches.iter().enumerate() {
                // GPU pre-attention.
                let mut deps: Vec<JobId> = vec![weights_job];
                if let Some(p) = prev_post[mb_idx] {
                    deps.push(p);
                }
                let model = Arc::clone(&self.model);
                let st = Arc::clone(state);
                let errs = Arc::clone(errors);
                let mb = members.clone();
                let pre_job = executor.submit(LaneId::Gpu, &deps, move || {
                    let mut st = st.lock();
                    for &s in &mb {
                        let hidden = st.hidden[s].clone();
                        match model.layers[layer_idx].pre_attention(&hidden) {
                            Ok(qkv) => st.qkv[s] = qkv,
                            Err(e) => errs
                                .lock()
                                .push(format!("pre-attention({layer_idx},{s}): {e}")),
                        }
                    }
                });

                // QKV offload to host.
                let counter = Arc::clone(d2h_bytes);
                let mb_len = members.len() as u64;
                let qkv_job = executor.submit(LaneId::DeviceToHost, &[pre_job], move || {
                    counter.fetch_add(qkv_bytes_per_seq * mb_len, Ordering::Relaxed);
                });

                // CPU attention over the KV cache.
                let model = Arc::clone(&self.model);
                let st = Arc::clone(state);
                let cc = Arc::clone(caches);
                let errs = Arc::clone(errors);
                let mb = members.clone();
                let attn_job = executor.submit(LaneId::Cpu, &[qkv_job], move || {
                    let mut st = st.lock();
                    let mut caches = cc.lock();
                    for &s in &mb {
                        let (q, k, v) = st.qkv[s].clone();
                        let result = model.layers[layer_idx].attention_with_cache(
                            caches[s].layer_mut(layer_idx),
                            &q,
                            &k,
                            &v,
                            nq,
                            hd,
                        );
                        match result {
                            Ok(out) => st.attn[s] = out,
                            Err(e) => errs.lock().push(format!("attention({layer_idx},{s}): {e}")),
                        }
                    }
                });

                // Hidden-state upload back to the GPU.
                let counter = Arc::clone(h2d_bytes);
                let hidden_job = executor.submit(LaneId::HostToDevice, &[attn_job], move || {
                    counter.fetch_add(hidden_bytes_per_seq * mb_len, Ordering::Relaxed);
                });

                // GPU post-attention (O projection, router, experts, residuals).
                let model = Arc::clone(&self.model);
                let st = Arc::clone(state);
                let errs = Arc::clone(errors);
                let mb = members.clone();
                let is_last_layer = layer_idx + 1 == num_layers;
                let final_norm = self.model.final_norm.clone();
                let post_job = executor.submit(LaneId::Gpu, &[hidden_job], move || {
                    let mut st = st.lock();
                    for &s in &mb {
                        let hidden = st.hidden[s].clone();
                        let attn = st.attn[s].clone();
                        match model.layers[layer_idx].post_attention(&hidden, &attn, top_k) {
                            Ok(new_hidden) => {
                                if is_last_layer {
                                    // Final RMSNorm + weight-tied LM head.
                                    let logits = moe_tensor::Tensor::from_vec(
                                        &[1, new_hidden.len()],
                                        new_hidden.clone(),
                                    )
                                    .and_then(|h| moe_tensor::ops::rms_norm(&h, &final_norm, 1e-6))
                                    .and_then(|h| {
                                        moe_tensor::ops::matvec(&model.embedding, h.row(0)?)
                                    });
                                    match logits {
                                        Ok(l) => st.logits[s] = l,
                                        Err(e) => errs.lock().push(format!("lm-head({s}): {e}")),
                                    }
                                }
                                st.hidden[s] = new_hidden;
                            }
                            Err(e) => errs
                                .lock()
                                .push(format!("post-attention({layer_idx},{s}): {e}")),
                        }
                    }
                });
                prev_post[mb_idx] = Some(post_job);
                last_post_of_layer[layer_idx] = Some(post_job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine(config: EngineConfig) -> PipelinedMoeEngine {
        let model =
            ReferenceMoeModel::random(&MoeModelConfig::tiny(), 7).expect("tiny config valid");
        PipelinedMoeEngine::new(model, config).expect("valid config")
    }

    fn reference_tokens(prompt: &[u32], gen_len: usize) -> Vec<u32> {
        let model =
            ReferenceMoeModel::random(&MoeModelConfig::tiny(), 7).expect("tiny config valid");
        model
            .generate_greedy(prompt, gen_len)
            .expect("reference generation")
    }

    #[test]
    fn pipelined_generation_matches_sequential_reference() {
        let engine = tiny_engine(EngineConfig::default());
        let prompts = vec![vec![1u32, 2, 3], vec![9, 8], vec![42, 17, 5, 11]];
        let out = engine.generate(&prompts, 6).unwrap();
        assert_eq!(out.tokens.len(), 3);
        for (prompt, generated) in prompts.iter().zip(&out.tokens) {
            assert_eq!(
                generated,
                &reference_tokens(prompt, 6),
                "pipeline must match the reference"
            );
        }
    }

    #[test]
    fn pipeline_moves_weight_and_activation_bytes() {
        let engine = tiny_engine(EngineConfig::default());
        let out = engine.generate(&[vec![3, 1, 4]], 4).unwrap();
        let cfg = MoeModelConfig::tiny();
        // Three pipelined decode passes (the last token needs no further pass), each
        // streaming all four layers' weights.
        let expected_weight_bytes = cfg.layer_weight_bytes().as_bytes() * 4 * 3;
        assert!(
            out.h2d_bytes.as_bytes() >= expected_weight_bytes,
            "h2d bytes {} must include weight streaming {}",
            out.h2d_bytes,
            expected_weight_bytes
        );
        assert!(out.d2h_bytes > ByteSize::ZERO);
        assert!(out.jobs_executed > 0);
        assert!(out.gpu_peak > ByteSize::ZERO);
    }

    #[test]
    fn different_micro_batch_sizes_give_identical_results() {
        let prompts = vec![
            vec![5u32, 6],
            vec![7, 8],
            vec![9, 10],
            vec![11, 12],
            vec![13],
        ];
        let out1 = tiny_engine(EngineConfig {
            micro_batch_size: 1,
            ..EngineConfig::default()
        })
        .generate(&prompts, 5)
        .unwrap();
        let out5 = tiny_engine(EngineConfig {
            micro_batch_size: 5,
            ..EngineConfig::default()
        })
        .generate(&prompts, 5)
        .unwrap();
        assert_eq!(
            out1.tokens, out5.tokens,
            "micro-batching must not change results"
        );
    }

    #[test]
    fn static_weight_fraction_reduces_streamed_bytes() {
        let prompts = vec![vec![1u32, 2, 3]];
        let streamed = tiny_engine(EngineConfig::default())
            .generate(&prompts, 4)
            .unwrap();
        let half_static = tiny_engine(EngineConfig {
            weights_gpu_ratio: 0.5,
            ..EngineConfig::default()
        })
        .generate(&prompts, 4)
        .unwrap();
        assert!(half_static.h2d_bytes < streamed.h2d_bytes);
        assert_eq!(half_static.tokens, streamed.tokens);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let engine = tiny_engine(EngineConfig::default());
        assert!(matches!(
            engine.generate(&[], 4),
            Err(RuntimeError::InvalidInput { .. })
        ));
        assert!(matches!(
            engine.generate(&[vec![]], 4),
            Err(RuntimeError::InvalidInput { .. })
        ));
        assert!(matches!(
            engine.generate(&[vec![9999]], 4),
            Err(RuntimeError::InvalidInput { .. })
        ));
        let model = ReferenceMoeModel::random(&MoeModelConfig::tiny(), 7).unwrap();
        assert!(PipelinedMoeEngine::new(
            model.clone(),
            EngineConfig {
                micro_batch_size: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
        assert!(PipelinedMoeEngine::new(
            model.clone(),
            EngineConfig {
                weight_pages_per_layer: 0,
                ..EngineConfig::default()
            }
        )
        .is_err());
        assert!(PipelinedMoeEngine::new(
            model,
            EngineConfig {
                weights_gpu_ratio: 1.5,
                ..EngineConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn engine_fails_cleanly_when_gpu_pool_too_small() {
        let model = ReferenceMoeModel::random(&MoeModelConfig::tiny(), 7).unwrap();
        let engine = PipelinedMoeEngine::new(
            model,
            EngineConfig {
                gpu_memory: ByteSize::from_bytes(1),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            engine.generate(&[vec![1, 2]], 2),
            Err(RuntimeError::Memory { .. })
        ));
    }

    #[test]
    fn zero_generation_length_produces_empty_outputs() {
        let engine = tiny_engine(EngineConfig::default());
        let out = engine.generate(&[vec![1, 2, 3]], 0).unwrap();
        assert_eq!(out.tokens, vec![Vec::<u32>::new()]);
    }
}
