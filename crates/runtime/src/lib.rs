//! Functional multi-threaded offloading runtime.
//!
//! Everything else in this workspace *models* the paper's pipeline; this crate
//! *executes* it. [`OffloadExecutor`] provides four FIFO worker lanes (GPU compute,
//! CPU compute, H2D, D2H) with cross-lane dependencies — the execution model CGOPipe
//! assumes — and [`PipelinedMoeEngine`] drives a real (tiny) Mixture-of-Experts model
//! through the CGOPipe task structure with paged, double-buffered weight prefetch and
//! per-device memory accounting. Its outputs are bit-identical to the sequential
//! reference forward pass, which is the strongest correctness check available for
//! the scheduling and paging logic.
//!
//! # Examples
//!
//! ```
//! use moe_model::{MoeModelConfig, ReferenceMoeModel};
//! use moe_runtime::{EngineConfig, PipelinedMoeEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = ReferenceMoeModel::random(&MoeModelConfig::tiny(), 0)?;
//! let engine = PipelinedMoeEngine::new(model, EngineConfig::default())?;
//! let output = engine.generate(&[vec![1, 2, 3]], 4)?;
//! assert_eq!(output.tokens[0].len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod executor;

pub use engine::{EngineConfig, GenerationOutput, PipelinedMoeEngine, RuntimeError};
pub use executor::{JobId, LaneId, OffloadExecutor};

#[cfg(test)]
mod proptests {
    use super::*;
    use moe_model::{MoeModelConfig, ReferenceMoeModel};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn pipelined_engine_matches_reference_for_random_prompts(
            seed in 0u64..50,
            prompt_len in 1usize..6,
            gen_len in 1usize..6,
            micro_batch in 1usize..4,
        ) {
            let cfg = MoeModelConfig::tiny();
            let model = ReferenceMoeModel::random(&cfg, seed).unwrap();
            let reference = model.clone();
            let engine = PipelinedMoeEngine::new(
                model,
                EngineConfig { micro_batch_size: micro_batch, ..EngineConfig::default() },
            )
            .unwrap();
            let prompts: Vec<Vec<u32>> = (0..3)
                .map(|s| (0..prompt_len).map(|i| (seed as u32 + s * 31 + i as u32 * 7) % cfg.vocab_size).collect())
                .collect();
            let out = engine.generate(&prompts, gen_len).unwrap();
            for (prompt, generated) in prompts.iter().zip(&out.tokens) {
                let expected = reference.generate_greedy(prompt, gen_len).unwrap();
                prop_assert_eq!(generated, &expected);
            }
        }
    }
}
