//! A small multi-threaded offloading executor with CUDA-stream-like semantics.
//!
//! Four worker threads model the four lanes of the paper's pipeline — GPU compute,
//! CPU compute, host→device copies and device→host copies. Jobs submitted to a lane
//! execute strictly in submission order (FIFO), and a job may additionally declare
//! dependencies on jobs from other lanes; the worker blocks until those have
//! completed. This is exactly the execution model the CGOPipe task launcher relies
//! on (Algorithm 1: "all the tasks are executed asynchronously, and necessary
//! synchronization primitives are added to each task").

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The lane a job executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneId {
    /// Simulated GPU compute stream.
    Gpu,
    /// Simulated CPU compute pool.
    Cpu,
    /// Host-to-device copy engine.
    HostToDevice,
    /// Device-to-host copy engine.
    DeviceToHost,
}

impl LaneId {
    /// All lanes.
    pub fn all() -> [LaneId; 4] {
        [
            LaneId::Gpu,
            LaneId::Cpu,
            LaneId::HostToDevice,
            LaneId::DeviceToHost,
        ]
    }
}

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LaneId::Gpu => "gpu",
            LaneId::Cpu => "cpu",
            LaneId::HostToDevice => "h2d",
            LaneId::DeviceToHost => "d2h",
        };
        f.write_str(s)
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Raw id (monotonically increasing in submission order).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

struct Job {
    id: JobId,
    deps: Vec<JobId>,
    work: Box<dyn FnOnce() + Send + 'static>,
}

#[derive(Default)]
struct Progress {
    completed: HashSet<u64>,
    submitted: u64,
}

struct Shared {
    progress: Mutex<Progress>,
    condvar: Condvar,
}

/// The offloading executor. Dropping it shuts the workers down after they drain
/// their queues.
pub struct OffloadExecutor {
    senders: Vec<(LaneId, Sender<Job>)>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for OffloadExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.shared.progress.lock();
        write!(
            f,
            "OffloadExecutor(submitted: {}, completed: {})",
            p.submitted,
            p.completed.len()
        )
    }
}

impl OffloadExecutor {
    /// Spawns the four lane workers.
    pub fn new() -> Self {
        let shared = Arc::new(Shared {
            progress: Mutex::new(Progress::default()),
            condvar: Condvar::new(),
        });
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for lane in LaneId::all() {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("moe-lane-{lane}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // Wait for cross-lane dependencies.
                        {
                            let mut progress = worker_shared.progress.lock();
                            while !job.deps.iter().all(|d| progress.completed.contains(&d.0)) {
                                worker_shared.condvar.wait(&mut progress);
                            }
                        }
                        (job.work)();
                        let mut progress = worker_shared.progress.lock();
                        progress.completed.insert(job.id.0);
                        worker_shared.condvar.notify_all();
                    }
                })
                .expect("failed to spawn lane worker thread");
            senders.push((lane, tx));
            handles.push(handle);
        }
        OffloadExecutor {
            senders,
            shared,
            handles,
        }
    }

    /// Submits a job to `lane`.
    ///
    /// Dependencies must refer to previously submitted jobs; this keeps the system
    /// deadlock-free under the per-lane FIFO execution order.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id refers to a job that has not been submitted yet.
    pub fn submit(
        &self,
        lane: LaneId,
        deps: &[JobId],
        work: impl FnOnce() + Send + 'static,
    ) -> JobId {
        let id = {
            let mut progress = self.shared.progress.lock();
            for dep in deps {
                assert!(
                    dep.0 < progress.submitted,
                    "dependency {dep:?} has not been submitted yet (forward dependencies deadlock)"
                );
            }
            let id = JobId(progress.submitted);
            progress.submitted += 1;
            id
        };
        let job = Job {
            id,
            deps: deps.to_vec(),
            work: Box::new(work),
        };
        let sender = self
            .senders
            .iter()
            .find(|(l, _)| *l == lane)
            .map(|(_, s)| s)
            .expect("all lanes have workers");
        sender
            .send(job)
            .expect("lane worker terminated unexpectedly");
        id
    }

    /// Blocks until the given job has completed.
    pub fn wait(&self, job: JobId) {
        let mut progress = self.shared.progress.lock();
        while !progress.completed.contains(&job.0) {
            self.shared.condvar.wait(&mut progress);
        }
    }

    /// Blocks until every job submitted so far has completed.
    pub fn wait_all(&self) {
        let mut progress = self.shared.progress.lock();
        while (progress.completed.len() as u64) < progress.submitted {
            self.shared.condvar.wait(&mut progress);
        }
    }

    /// Number of completed jobs.
    pub fn completed(&self) -> usize {
        self.shared.progress.lock().completed.len()
    }

    /// Number of submitted jobs.
    pub fn submitted(&self) -> u64 {
        self.shared.progress.lock().submitted
    }

    /// Shuts the executor down, waiting for all queued work to finish.
    pub fn shutdown(mut self) {
        self.wait_all();
        self.senders.clear(); // close channels -> workers exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Default for OffloadExecutor {
    fn default() -> Self {
        OffloadExecutor::new()
    }
}

impl Drop for OffloadExecutor {
    fn drop(&mut self) {
        // Close the channels; workers drain their queues and exit. Joining here keeps
        // destruction deterministic for tests.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn jobs_on_one_lane_run_in_fifo_order() {
        let exec = OffloadExecutor::new();
        let order = Arc::new(StdMutex::new(Vec::new()));
        for i in 0..16 {
            let order = Arc::clone(&order);
            exec.submit(LaneId::Gpu, &[], move || order.lock().unwrap().push(i));
        }
        exec.wait_all();
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_across_lanes_are_honoured() {
        let exec = OffloadExecutor::new();
        let value = Arc::new(AtomicUsize::new(0));
        let v1 = Arc::clone(&value);
        let a = exec.submit(LaneId::HostToDevice, &[], move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            v1.store(7, Ordering::SeqCst);
        });
        let v2 = Arc::clone(&value);
        let observed = Arc::new(AtomicUsize::new(0));
        let o2 = Arc::clone(&observed);
        let b = exec.submit(LaneId::Gpu, &[a], move || {
            o2.store(v2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        exec.wait(b);
        assert_eq!(
            observed.load(Ordering::SeqCst),
            7,
            "GPU job must see the transfer's effect"
        );
    }

    #[test]
    fn independent_lanes_run_concurrently() {
        // Two long jobs on different lanes should overlap: total wall time must be
        // well below the sum of their durations.
        let exec = OffloadExecutor::new();
        let start = std::time::Instant::now();
        for lane in [
            LaneId::Gpu,
            LaneId::Cpu,
            LaneId::HostToDevice,
            LaneId::DeviceToHost,
        ] {
            exec.submit(lane, &[], || {
                std::thread::sleep(std::time::Duration::from_millis(50))
            });
        }
        exec.wait_all();
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_millis() < 160,
            "lanes did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn wait_all_counts_every_job() {
        let exec = OffloadExecutor::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let lane = LaneId::all()[i % 4];
            let c = Arc::clone(&counter);
            exec.submit(lane, &[], move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        exec.wait_all();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(exec.completed(), 100);
        assert_eq!(exec.submitted(), 100);
        exec.shutdown();
    }

    #[test]
    #[should_panic(expected = "forward dependencies")]
    fn forward_dependency_panics() {
        let exec = OffloadExecutor::new();
        exec.submit(LaneId::Gpu, &[JobId(99)], || {});
    }

    #[test]
    fn chained_dependencies_produce_sequential_effects() {
        let exec = OffloadExecutor::new();
        let log = Arc::new(StdMutex::new(Vec::new()));
        let mut prev: Option<JobId> = None;
        for i in 0..20 {
            let lane = LaneId::all()[i % 4];
            let log = Arc::clone(&log);
            let deps: Vec<JobId> = prev.into_iter().collect();
            prev = Some(exec.submit(lane, &deps, move || log.lock().unwrap().push(i)));
        }
        exec.wait_all();
        assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn debug_output_reports_progress() {
        let exec = OffloadExecutor::new();
        exec.submit(LaneId::Cpu, &[], || {});
        exec.wait_all();
        let dbg = format!("{exec:?}");
        assert!(dbg.contains("submitted: 1") && dbg.contains("completed: 1"));
    }
}
