//! Reference numeric implementation of a MoE transformer.
//!
//! This is the "ground truth" forward pass used by the functional offloading runtime
//! (`moe-runtime`) and by end-to-end tests: a small but complete Mixtral-style
//! decoder layer — RMSNorm, GQA attention with a growing KV cache, output
//! projection, router, top-k expert mixing with SwiGLU experts — implemented with
//! the `moe-tensor` kernels. It is intended to be run with [`MoeModelConfig::tiny`]
//! or similarly small configurations.

use crate::arch::MoeModelConfig;
use moe_tensor::attention::gqa_attention_decode;
use moe_tensor::ops::{matvec, rms_norm, silu, softmax_inplace, top_k};
use moe_tensor::{Tensor, TensorError};

/// The `(q, k, v)` projection vectors of one token.
pub type QkvVectors = (Vec<f32>, Vec<f32>, Vec<f32>);

/// Weights of a single SwiGLU expert FFN.
#[derive(Debug, Clone)]
pub struct ExpertWeights {
    /// Gate projection `[d_model, d_ff]`.
    pub w_gate: Tensor,
    /// Up projection `[d_model, d_ff]`.
    pub w_up: Tensor,
    /// Down projection `[d_ff, d_model]`.
    pub w_down: Tensor,
}

impl ExpertWeights {
    /// Randomly initializes one expert.
    pub fn random(cfg: &MoeModelConfig, seed: u64) -> Self {
        let d = cfg.d_model as usize;
        let f = cfg.d_ff as usize;
        let std = 0.4 / (d as f32).sqrt();
        ExpertWeights {
            w_gate: Tensor::randn(&[d, f], std, seed),
            w_up: Tensor::randn(&[d, f], std, seed.wrapping_add(1)),
            w_down: Tensor::randn(&[f, d], std, seed.wrapping_add(2)),
        }
    }

    /// SwiGLU forward for a single token vector `x` of length `d_model`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong length.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>, TensorError> {
        let (d, f) = self.w_gate.as_2d()?;
        if x.len() != d {
            return Err(TensorError::ShapeMismatch {
                expected: vec![d],
                got: vec![x.len()],
                context: "ExpertWeights::forward",
            });
        }
        let mut gate = vec![0.0f32; f];
        let mut up = vec![0.0f32; f];
        // x[d] · W[d,f]: accumulate row-wise to stay cache friendly.
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let g_row = self.w_gate.row(i)?;
            let u_row = self.w_up.row(i)?;
            for j in 0..f {
                gate[j] += xi * g_row[j];
                up[j] += xi * u_row[j];
            }
        }
        let hidden: Vec<f32> = gate.iter().zip(&up).map(|(g, u)| silu(*g) * u).collect();
        let mut out = vec![0.0f32; d];
        for (j, &hj) in hidden.iter().enumerate() {
            if hj == 0.0 {
                continue;
            }
            let d_row = self.w_down.row(j)?;
            for i in 0..d {
                out[i] += hj * d_row[i];
            }
        }
        Ok(out)
    }
}

/// Weights of one MoE transformer layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// RMSNorm gain before attention.
    pub attn_norm: Vec<f32>,
    /// Query projection `[d_model, n_q·head_dim]`.
    pub wq: Tensor,
    /// Key projection `[d_model, n_kv·head_dim]`.
    pub wk: Tensor,
    /// Value projection `[d_model, n_kv·head_dim]`.
    pub wv: Tensor,
    /// Output projection `[n_q·head_dim, d_model]`.
    pub wo: Tensor,
    /// RMSNorm gain before the MoE FFN.
    pub ffn_norm: Vec<f32>,
    /// Router weights `[d_model, num_experts]`.
    pub router: Tensor,
    /// Expert FFNs.
    pub experts: Vec<ExpertWeights>,
}

impl LayerWeights {
    /// Pre-attention phase (the GPU task `A` of CGOPipe): RMSNorm followed by the
    /// Q/K/V projections of one token's hidden state.
    ///
    /// Returns `(q, k, v)` with `q` of length `n_q·head_dim` and `k`/`v` of length
    /// `n_kv·head_dim`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn pre_attention(&self, hidden: &[f32]) -> Result<QkvVectors, TensorError> {
        let d = hidden.len();
        let x = Tensor::from_vec(&[1, d], hidden.to_vec())?;
        let x_norm = rms_norm(&x, &self.attn_norm, 1e-6)?;
        let x_row = x_norm.row(0)?;
        Ok((
            matvec(&transpose(&self.wq)?, x_row)?,
            matvec(&transpose(&self.wk)?, x_row)?,
            matvec(&transpose(&self.wv)?, x_row)?,
        ))
    }

    /// Post-attention phase (the GPU task `C` of CGOPipe): output projection,
    /// residual, FFN RMSNorm, top-k routing and the expert mixture, for one token.
    ///
    /// `hidden` is the layer input (pre-residual), `attn_out` the flattened GQA
    /// attention output (`n_q·head_dim`), `top_k` the number of experts to mix.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn post_attention(
        &self,
        hidden: &[f32],
        attn_out: &[f32],
        top_k: usize,
    ) -> Result<Vec<f32>, TensorError> {
        let d = hidden.len();
        let o = matvec(&transpose(&self.wo)?, attn_out)?;
        let after_attn: Vec<f32> = hidden.iter().zip(&o).map(|(h, o)| h + o).collect();

        let y = Tensor::from_vec(&[1, d], after_attn.clone())?;
        let y_norm = rms_norm(&y, &self.ffn_norm, 1e-6)?;
        let y_row = y_norm.row(0)?;
        let mut logits = matvec(&transpose(&self.router)?, y_row)?;
        softmax_inplace(&mut logits);
        let selected = top_k_experts(&logits, top_k)?;
        let mut ffn_out = vec![0.0f32; d];
        for (expert_idx, weight) in selected {
            let expert_out = self.experts[expert_idx].forward(y_row)?;
            for (acc, val) in ffn_out.iter_mut().zip(&expert_out) {
                *acc += weight * val;
            }
        }
        Ok(after_attn
            .iter()
            .zip(&ffn_out)
            .map(|(a, f)| a + f)
            .collect())
    }

    /// Attention phase (the CPU task `B` of CGOPipe): appends the new token's K/V to
    /// `cache` and attends over the whole cache.
    ///
    /// Returns the flattened attention output (`n_q·head_dim`).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn attention_with_cache(
        &self,
        cache: &mut LayerKvCache,
        q: &[f32],
        k: &[f32],
        v: &[f32],
        num_q_heads: usize,
        head_dim: usize,
    ) -> Result<Vec<f32>, TensorError> {
        cache.append(k, v)?;
        let (k_t, v_t) = cache.as_tensors()?;
        let q_t = Tensor::from_vec(&[num_q_heads, head_dim], q.to_vec())?;
        Ok(gqa_attention_decode(&q_t, &k_t, &v_t)?.into_vec())
    }

    /// Randomly initializes one layer.
    pub fn random(cfg: &MoeModelConfig, seed: u64) -> Self {
        let d = cfg.d_model as usize;
        let qd = (cfg.num_q_heads * cfg.head_dim) as usize;
        let kvd = (cfg.num_kv_heads * cfg.head_dim) as usize;
        let std = 0.4 / (d as f32).sqrt();
        LayerWeights {
            attn_norm: vec![1.0; d],
            wq: Tensor::randn(&[d, qd], std, seed.wrapping_mul(31).wrapping_add(1)),
            wk: Tensor::randn(&[d, kvd], std, seed.wrapping_mul(31).wrapping_add(2)),
            wv: Tensor::randn(&[d, kvd], std, seed.wrapping_mul(31).wrapping_add(3)),
            wo: Tensor::randn(&[qd, d], std, seed.wrapping_mul(31).wrapping_add(4)),
            ffn_norm: vec![1.0; d],
            router: Tensor::randn(
                &[d, cfg.num_experts as usize],
                0.5,
                seed.wrapping_mul(31).wrapping_add(5),
            ),
            experts: (0..cfg.num_experts)
                .map(|e| {
                    ExpertWeights::random(
                        cfg,
                        seed.wrapping_mul(131).wrapping_add(u64::from(e) * 7),
                    )
                })
                .collect(),
        }
    }
}

/// Per-layer, per-sequence KV cache storing keys and values head-major.
#[derive(Debug, Clone, Default)]
pub struct LayerKvCache {
    num_kv_heads: usize,
    head_dim: usize,
    /// Keys laid out `[kv_head][token][dim]`, one `Vec` per head.
    k: Vec<Vec<f32>>,
    /// Values, same layout as `k`.
    v: Vec<Vec<f32>>,
    len: usize,
}

impl LayerKvCache {
    /// Creates an empty cache for the given head geometry.
    pub fn new(num_kv_heads: usize, head_dim: usize) -> Self {
        LayerKvCache {
            num_kv_heads,
            head_dim,
            k: vec![Vec::new(); num_kv_heads],
            v: vec![Vec::new(); num_kv_heads],
            len: 0,
        }
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no tokens are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one token's keys and values (`k_new`/`v_new` are `[n_kv·head_dim]`,
    /// head-major).
    ///
    /// # Errors
    ///
    /// Returns an error if the vector lengths do not match the head geometry.
    pub fn append(&mut self, k_new: &[f32], v_new: &[f32]) -> Result<(), TensorError> {
        let expected = self.num_kv_heads * self.head_dim;
        if k_new.len() != expected || v_new.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected: vec![expected],
                got: vec![k_new.len(), v_new.len()],
                context: "LayerKvCache::append",
            });
        }
        for h in 0..self.num_kv_heads {
            let s = h * self.head_dim;
            self.k[h].extend_from_slice(&k_new[s..s + self.head_dim]);
            self.v[h].extend_from_slice(&v_new[s..s + self.head_dim]);
        }
        self.len += 1;
        Ok(())
    }

    /// Materializes the cache as `([n_kv, len, head_dim], [n_kv, len, head_dim])`
    /// tensors suitable for [`gqa_attention_decode`].
    ///
    /// # Errors
    ///
    /// Returns an error if the cache is empty.
    pub fn as_tensors(&self) -> Result<(Tensor, Tensor), TensorError> {
        if self.len == 0 {
            return Err(TensorError::InvalidArgument {
                message: "cannot materialize an empty KV cache".to_owned(),
            });
        }
        let mut k_data = Vec::with_capacity(self.num_kv_heads * self.len * self.head_dim);
        let mut v_data = Vec::with_capacity(k_data.capacity());
        for h in 0..self.num_kv_heads {
            k_data.extend_from_slice(&self.k[h]);
            v_data.extend_from_slice(&self.v[h]);
        }
        let shape = [self.num_kv_heads, self.len, self.head_dim];
        Ok((
            Tensor::from_vec(&shape, k_data)?,
            Tensor::from_vec(&shape, v_data)?,
        ))
    }
}

/// Per-sequence KV caches for all layers.
#[derive(Debug, Clone)]
pub struct SequenceCache {
    layers: Vec<LayerKvCache>,
}

impl SequenceCache {
    /// Creates empty caches for every layer of `cfg`.
    pub fn new(cfg: &MoeModelConfig) -> Self {
        SequenceCache {
            layers: (0..cfg.num_layers)
                .map(|_| LayerKvCache::new(cfg.num_kv_heads as usize, cfg.head_dim as usize))
                .collect(),
        }
    }

    /// Cache of layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable cache of layer `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Number of tokens cached (taken from layer 0; all layers stay in sync).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }
}

/// Result of routing one token: the selected experts and their normalized weights.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingDecision {
    /// `(expert index, gate weight)` pairs, weights summing to 1.
    pub experts: Vec<(usize, f32)>,
}

/// A complete tiny MoE model: token embedding, decoder layers and LM head
/// (weight-tied to the embedding).
#[derive(Debug, Clone)]
pub struct ReferenceMoeModel {
    cfg: MoeModelConfig,
    /// Token embedding `[vocab, d_model]`.
    pub embedding: Tensor,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
}

impl ReferenceMoeModel {
    /// Randomly initializes a model for `cfg` with a deterministic `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is internally inconsistent.
    pub fn random(cfg: &MoeModelConfig, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        let d = cfg.d_model as usize;
        Ok(ReferenceMoeModel {
            cfg: cfg.clone(),
            embedding: Tensor::randn(&[cfg.vocab_size as usize, d], 0.05, seed),
            layers: (0..cfg.num_layers)
                .map(|l| LayerWeights::random(cfg, seed.wrapping_add(1000 + u64::from(l))))
                .collect(),
            final_norm: vec![1.0; d],
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &MoeModelConfig {
        &self.cfg
    }

    /// Routes a (normalized) hidden vector through the router of `layer`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn route(&self, layer: &LayerWeights, x: &[f32]) -> Result<RoutingDecision, TensorError> {
        let mut logits = matvec(&transpose(&layer.router)?, x)?;
        softmax_inplace(&mut logits);
        Ok(RoutingDecision {
            experts: top_k_experts(&logits, self.cfg.top_k as usize)?,
        })
    }

    /// Runs one decoder layer for a single token of a single sequence, appending to
    /// the sequence's KV cache.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_layer_decode(
        &self,
        layer_idx: usize,
        hidden: &[f32],
        cache: &mut SequenceCache,
    ) -> Result<Vec<f32>, TensorError> {
        let layer = &self.layers[layer_idx];
        let nq = self.cfg.num_q_heads as usize;
        let hd = self.cfg.head_dim as usize;

        // The three CGOPipe phases in sequence: pre-attention (GPU), attention over
        // the KV cache (CPU), post-attention (GPU).
        let (q, k, v) = layer.pre_attention(hidden)?;
        let attn = layer.attention_with_cache(cache.layer_mut(layer_idx), &q, &k, &v, nq, hd)?;
        layer.post_attention(hidden, &attn, self.cfg.top_k as usize)
    }

    /// Embeds a token id.
    ///
    /// # Errors
    ///
    /// Returns an error if the token id is out of the vocabulary range.
    pub fn embed(&self, token: u32) -> Result<Vec<f32>, TensorError> {
        if token >= self.cfg.vocab_size {
            return Err(TensorError::IndexOutOfBounds {
                index: token as usize,
                len: self.cfg.vocab_size as usize,
            });
        }
        Ok(self.embedding.row(token as usize)?.to_vec())
    }

    /// Full forward pass for one token of one sequence; returns the logits over the
    /// vocabulary.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn forward_token(
        &self,
        token: u32,
        cache: &mut SequenceCache,
    ) -> Result<Vec<f32>, TensorError> {
        let mut hidden = self.embed(token)?;
        for layer_idx in 0..self.layers.len() {
            hidden = self.forward_layer_decode(layer_idx, &hidden, cache)?;
        }
        let h = Tensor::from_vec(&[1, hidden.len()], hidden)?;
        let h_norm = rms_norm(&h, &self.final_norm, 1e-6)?;
        // Weight-tied LM head: logits = embedding · h.
        matvec(&self.embedding, h_norm.row(0)?)
    }

    /// Greedy generation: prefills `prompt` token by token and then generates
    /// `gen_len` tokens, returning the generated ids.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors; returns an error if the prompt is empty.
    pub fn generate_greedy(&self, prompt: &[u32], gen_len: usize) -> Result<Vec<u32>, TensorError> {
        if prompt.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "prompt must contain at least one token".to_owned(),
            });
        }
        let mut cache = SequenceCache::new(&self.cfg);
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.forward_token(t, &mut cache)?;
        }
        let mut output = Vec::with_capacity(gen_len);
        for _ in 0..gen_len {
            let next = argmax(&logits);
            output.push(next);
            logits = self.forward_token(next, &mut cache)?;
        }
        Ok(output)
    }
}

/// Selects the top-`k` experts from (already softmaxed) router scores and normalizes
/// their weights to sum to one.
///
/// # Errors
///
/// Propagates [`moe_tensor::ops::top_k`] argument errors.
pub fn top_k_experts(scores: &[f32], k: usize) -> Result<Vec<(usize, f32)>, TensorError> {
    let selected = top_k(scores, k)?;
    let total: f32 = selected.iter().map(|(_, w)| *w).sum();
    Ok(selected
        .into_iter()
        .map(|(i, w)| {
            (
                i,
                if total > 0.0 {
                    w / total
                } else {
                    1.0 / k as f32
                },
            )
        })
        .collect())
}

/// Index of the maximum element (ties broken towards the lower index).
pub fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best as u32
}

/// Transposes a 2-D tensor (helper for using `[in, out]`-layout weights with
/// `matvec`, which expects `[out, in]`).
fn transpose(t: &Tensor) -> Result<Tensor, TensorError> {
    let (rows, cols) = t.as_2d()?;
    let mut out = Tensor::zeros(&[cols, rows]);
    let src = t.data();
    let dst = out.data_mut();
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ReferenceMoeModel {
        ReferenceMoeModel::random(&MoeModelConfig::tiny(), 42).expect("tiny config is valid")
    }

    #[test]
    fn model_construction_respects_config() {
        let m = tiny_model();
        assert_eq!(m.layers.len(), 4);
        assert_eq!(m.layers[0].experts.len(), 4);
        assert_eq!(m.embedding.shape(), &[256, 32]);
    }

    #[test]
    fn construction_rejects_invalid_config() {
        let mut cfg = MoeModelConfig::tiny();
        cfg.top_k = 99;
        assert!(ReferenceMoeModel::random(&cfg, 0).is_err());
    }

    #[test]
    fn routing_weights_sum_to_one_and_select_top_k() {
        let m = tiny_model();
        let x = vec![0.3f32; 32];
        let routing = m.route(&m.layers[0], &x).unwrap();
        assert_eq!(routing.experts.len(), 2);
        let total: f32 = routing.experts.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert_ne!(routing.experts[0].0, routing.experts[1].0);
    }

    #[test]
    fn kv_cache_grows_by_one_per_decoded_token() {
        let m = tiny_model();
        let mut cache = SequenceCache::new(m.config());
        m.forward_token(5, &mut cache).unwrap();
        assert_eq!(cache.seq_len(), 1);
        m.forward_token(7, &mut cache).unwrap();
        assert_eq!(cache.seq_len(), 2);
        for l in 0..4 {
            assert_eq!(cache.layer(l).len(), 2, "all layers stay in sync");
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let m = tiny_model();
        let mut c1 = SequenceCache::new(m.config());
        let mut c2 = SequenceCache::new(m.config());
        let l1 = m.forward_token(9, &mut c1).unwrap();
        let l2 = m.forward_token(9, &mut c2).unwrap();
        assert_eq!(l1, l2);
    }

    #[test]
    fn logits_depend_on_context() {
        let m = tiny_model();
        let mut with_ctx = SequenceCache::new(m.config());
        m.forward_token(3, &mut with_ctx).unwrap();
        let logits_ctx = m.forward_token(9, &mut with_ctx).unwrap();

        let mut fresh = SequenceCache::new(m.config());
        let logits_fresh = m.forward_token(9, &mut fresh).unwrap();

        let diff: f32 = logits_ctx
            .iter()
            .zip(&logits_fresh)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff > 1e-6, "attention must make logits context-dependent");
    }

    #[test]
    fn generate_produces_requested_number_of_tokens_in_vocab() {
        let m = tiny_model();
        let out = m.generate_greedy(&[1, 2, 3], 8).unwrap();
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&t| t < m.config().vocab_size));
        // Determinism of greedy decoding.
        let out2 = m.generate_greedy(&[1, 2, 3], 8).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn generate_rejects_empty_prompt() {
        assert!(tiny_model().generate_greedy(&[], 4).is_err());
    }

    #[test]
    fn embed_rejects_out_of_vocab_token() {
        let m = tiny_model();
        assert!(m.embed(9999).is_err());
    }

    #[test]
    fn expert_forward_validates_input_length() {
        let m = tiny_model();
        assert!(m.layers[0].experts[0].forward(&[0.0; 3]).is_err());
        assert_eq!(
            m.layers[0].experts[0].forward(&[0.1; 32]).unwrap().len(),
            32
        );
    }

    #[test]
    fn layer_kv_cache_validates_append_length() {
        let mut cache = LayerKvCache::new(2, 4);
        assert!(cache.append(&[0.0; 8], &[0.0; 8]).is_ok());
        assert!(cache.append(&[0.0; 7], &[0.0; 8]).is_err());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        let (k, v) = cache.as_tensors().unwrap();
        assert_eq!(k.shape(), &[2, 1, 4]);
        assert_eq!(v.shape(), &[2, 1, 4]);
    }

    #[test]
    fn empty_kv_cache_cannot_be_materialized() {
        let cache = LayerKvCache::new(2, 4);
        assert!(cache.as_tensors().is_err());
    }

    #[test]
    fn argmax_breaks_ties_towards_lower_index() {
        assert_eq!(argmax(&[0.5, 1.0, 1.0]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
