//! MoE model architecture configurations and derived memory footprints.
//!
//! Encodes the model configurations of Tab. 1/Tab. 2 of the paper: number of layers
//! `l`, model and intermediate hidden dimensions `h1`/`h2`, query and key/value head
//! counts `n_q`/`n_kv`, number of experts `n_e`, top-k routing `k` and the weight /
//! KV-cache data types. All byte-level sizing used by the memory manager, the policy
//! optimizer and the performance model derives from this single struct.

use moe_hardware::{ByteSize, DType};
use serde::{Deserialize, Serialize};

/// Architecture description of a Mixture-of-Experts transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of transformer layers (`l`).
    pub num_layers: u32,
    /// Model hidden dimension (`h1`).
    pub d_model: u32,
    /// Expert FFN intermediate dimension (`h2`).
    pub d_ff: u32,
    /// Number of query heads (`n_q`).
    pub num_q_heads: u32,
    /// Number of key/value heads (`n_kv`, GQA groups).
    pub num_kv_heads: u32,
    /// Dimension of each attention head.
    pub head_dim: u32,
    /// Number of experts per MoE FFN (`n_e`).
    pub num_experts: u32,
    /// Number of experts activated per token (`k`).
    pub top_k: u32,
    /// Vocabulary size (embedding / LM head rows).
    pub vocab_size: u32,
    /// Data type used to store weights.
    pub weight_dtype: DType,
    /// Data type used to store the KV cache.
    pub kv_dtype: DType,
}

impl MoeModelConfig {
    /// Mixtral 8x7B (46.7 B total parameters, 12.9 B active). Evaluation settings S1/S2.
    pub fn mixtral_8x7b() -> Self {
        MoeModelConfig {
            name: "Mixtral-8x7B".to_owned(),
            num_layers: 32,
            d_model: 4096,
            d_ff: 14336,
            num_q_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            num_experts: 8,
            top_k: 2,
            vocab_size: 32_000,
            weight_dtype: DType::F16,
            kv_dtype: DType::F16,
        }
    }

    /// Mixtral 8x22B (141 B total parameters). Evaluation settings S6/S7.
    pub fn mixtral_8x22b() -> Self {
        MoeModelConfig {
            name: "Mixtral-8x22B".to_owned(),
            num_layers: 56,
            d_model: 6144,
            d_ff: 16384,
            num_q_heads: 48,
            num_kv_heads: 8,
            head_dim: 128,
            num_experts: 8,
            top_k: 2,
            vocab_size: 32_768,
            weight_dtype: DType::F16,
            kv_dtype: DType::F16,
        }
    }

    /// DBRX (132 B total parameters, 16 experts, top-4). Evaluation settings S8/S9.
    pub fn dbrx() -> Self {
        MoeModelConfig {
            name: "DBRX".to_owned(),
            num_layers: 40,
            d_model: 6144,
            d_ff: 10752,
            num_q_heads: 48,
            num_kv_heads: 8,
            head_dim: 128,
            num_experts: 16,
            top_k: 4,
            vocab_size: 100_352,
            weight_dtype: DType::F16,
            kv_dtype: DType::F16,
        }
    }

    /// A deliberately tiny configuration (thousands of parameters) for the functional
    /// offloading runtime and numeric end-to-end tests.
    pub fn tiny() -> Self {
        MoeModelConfig {
            name: "Tiny-MoE".to_owned(),
            num_layers: 4,
            d_model: 32,
            d_ff: 64,
            num_q_heads: 4,
            num_kv_heads: 2,
            head_dim: 8,
            num_experts: 4,
            top_k: 2,
            vocab_size: 256,
            weight_dtype: DType::F32,
            kv_dtype: DType::F32,
        }
    }

    /// Returns a copy with a different KV-cache data type (e.g. int4 quantization,
    /// compared in Fig. 4 of the paper).
    pub fn with_kv_dtype(&self, dtype: DType) -> MoeModelConfig {
        MoeModelConfig {
            kv_dtype: dtype,
            ..self.clone()
        }
    }

    /// Returns a copy with a different weight data type.
    pub fn with_weight_dtype(&self, dtype: DType) -> MoeModelConfig {
        MoeModelConfig {
            weight_dtype: dtype,
            ..self.clone()
        }
    }

    // --- parameter counts -------------------------------------------------------

    /// Attention projection parameters per layer: W_Q, W_K, W_V, W_O.
    pub fn attention_params_per_layer(&self) -> u64 {
        let d = u64::from(self.d_model);
        let q = u64::from(self.num_q_heads) * u64::from(self.head_dim);
        let kv = u64::from(self.num_kv_heads) * u64::from(self.head_dim);
        // Q, K, V projections plus output projection.
        d * q + 2 * d * kv + q * d
    }

    /// Parameters of a single expert FFN (gate, up and down projections — the
    /// SwiGLU layout used by Mixtral and DBRX).
    pub fn params_per_expert(&self) -> u64 {
        3 * u64::from(self.d_model) * u64::from(self.d_ff)
    }

    /// Expert parameters per layer (all experts).
    pub fn expert_params_per_layer(&self) -> u64 {
        self.params_per_expert() * u64::from(self.num_experts)
    }

    /// Router (gating network) parameters per layer.
    pub fn router_params_per_layer(&self) -> u64 {
        u64::from(self.d_model) * u64::from(self.num_experts)
    }

    /// All parameters of one transformer layer (attention + router + experts + norms).
    pub fn params_per_layer(&self) -> u64 {
        self.attention_params_per_layer()
            + self.expert_params_per_layer()
            + self.router_params_per_layer()
            + 2 * u64::from(self.d_model) // two RMSNorm gain vectors
    }

    /// Embedding + LM head parameters.
    pub fn embedding_params(&self) -> u64 {
        2 * u64::from(self.vocab_size) * u64::from(self.d_model)
    }

    /// Total parameter count of the model.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * u64::from(self.num_layers) + self.embedding_params()
    }

    /// Parameters activated per token (attention + router + top-k experts), the
    /// quantity that determines per-token FLOPs.
    pub fn active_params_per_layer(&self) -> u64 {
        self.attention_params_per_layer()
            + self.router_params_per_layer()
            + self.params_per_expert() * u64::from(self.top_k)
            + 2 * u64::from(self.d_model)
    }

    // --- byte footprints --------------------------------------------------------

    /// Bytes of the attention weights of one layer.
    pub fn attention_weight_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(
            self.weight_dtype
                .bytes_for(self.attention_params_per_layer()),
        )
    }

    /// Bytes of one expert's weights.
    pub fn expert_weight_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.weight_dtype.bytes_for(self.params_per_expert()))
    }

    /// Bytes of all expert weights of one layer.
    pub fn expert_weight_bytes_per_layer(&self) -> ByteSize {
        ByteSize::from_bytes(self.weight_dtype.bytes_for(self.expert_params_per_layer()))
    }

    /// Bytes of all weights of one layer.
    pub fn layer_weight_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.weight_dtype.bytes_for(self.params_per_layer()))
    }

    /// Bytes of the whole model's weights (all layers + embeddings).
    pub fn total_weight_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.weight_dtype.bytes_for(self.total_params()))
    }

    /// KV-cache bytes for one token in one layer (keys and values of all KV heads).
    pub fn kv_bytes_per_token_per_layer(&self) -> ByteSize {
        let elems = 2 * u64::from(self.num_kv_heads) * u64::from(self.head_dim);
        ByteSize::from_bytes(self.kv_dtype.bytes_for(elems))
    }

    /// KV-cache bytes for one token across all layers.
    pub fn kv_bytes_per_token(&self) -> ByteSize {
        self.kv_bytes_per_token_per_layer() * u64::from(self.num_layers)
    }

    /// KV-cache bytes for a batch of `batch` sequences with `context_len` tokens each,
    /// in a single layer.
    pub fn kv_bytes_per_layer(&self, batch: u64, context_len: u64) -> ByteSize {
        self.kv_bytes_per_token_per_layer() * batch * context_len
    }

    /// Bytes of the hidden-state activations for `tokens` tokens (one layer boundary).
    pub fn hidden_state_bytes(&self, tokens: u64) -> ByteSize {
        ByteSize::from_bytes(
            self.weight_dtype
                .bytes_for(tokens * u64::from(self.d_model)),
        )
    }

    /// Bytes of the Q, K and V projections for `tokens` tokens, i.e. the intermediate
    /// result CGOPipe offloads to the CPU after the QKV projection (transfer D1).
    pub fn qkv_bytes(&self, tokens: u64) -> ByteSize {
        let per_token = u64::from(self.num_q_heads) * u64::from(self.head_dim)
            + 2 * u64::from(self.num_kv_heads) * u64::from(self.head_dim);
        ByteSize::from_bytes(self.weight_dtype.bytes_for(tokens * per_token))
    }

    /// Query-head to KV-head group size (`n_q / n_kv`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero KV heads.
    pub fn gqa_group_size(&self) -> u32 {
        assert!(
            self.num_kv_heads > 0,
            "model must have at least one KV head"
        );
        self.num_q_heads / self.num_kv_heads
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("model must have at least one layer".to_owned());
        }
        if self.num_kv_heads == 0 || self.num_q_heads == 0 {
            return Err("head counts must be positive".to_owned());
        }
        if !self.num_q_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "query heads ({}) must be a multiple of KV heads ({})",
                self.num_q_heads, self.num_kv_heads
            ));
        }
        if self.top_k == 0 || self.top_k > self.num_experts {
            return Err(format!(
                "top_k ({}) must be in 1..={}",
                self.top_k, self.num_experts
            ));
        }
        if self.d_model == 0 || self.d_ff == 0 {
            return Err("hidden dimensions must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            MoeModelConfig::mixtral_8x7b(),
            MoeModelConfig::mixtral_8x22b(),
            MoeModelConfig::dbrx(),
            MoeModelConfig::tiny(),
        ] {
            cfg.validate()
                .expect("preset must be internally consistent");
        }
    }

    #[test]
    fn mixtral_8x7b_total_params_close_to_published_46_7b() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let total = cfg.total_params() as f64 / 1e9;
        assert!((46.0..48.0).contains(&total), "got {total} B params");
    }

    #[test]
    fn mixtral_8x22b_total_params_close_to_published_141b() {
        let cfg = MoeModelConfig::mixtral_8x22b();
        let total = cfg.total_params() as f64 / 1e9;
        assert!((138.0..145.0).contains(&total), "got {total} B params");
    }

    #[test]
    fn dbrx_total_params_close_to_published_132b() {
        let cfg = MoeModelConfig::dbrx();
        let total = cfg.total_params() as f64 / 1e9;
        assert!((126.0..135.0).contains(&total), "got {total} B params");
    }

    #[test]
    fn mixtral_active_params_close_to_published_12_9b() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let active = (cfg.active_params_per_layer() * u64::from(cfg.num_layers)
            + cfg.embedding_params()) as f64
            / 1e9;
        assert!(
            (12.0..14.0).contains(&active),
            "got {active} B active params"
        );
    }

    #[test]
    fn mixtral_8x22b_expert_ffn_exceeds_256_gb_in_f32_equivalent() {
        // The paper's intro quotes >256 GB for the 8x22B expert FFN weights; with f16
        // that is ~270 GB of parameters at 2 bytes => check the parameter count.
        let cfg = MoeModelConfig::mixtral_8x22b();
        let expert_bytes = cfg.expert_weight_bytes_per_layer().as_gib() * f64::from(cfg.num_layers);
        assert!(expert_bytes > 250.0, "expert FFN only {expert_bytes} GiB");
    }

    #[test]
    fn kv_bytes_scale_with_dtype() {
        let f16 = MoeModelConfig::mixtral_8x7b();
        let int4 = f16.with_kv_dtype(DType::Int4);
        assert_eq!(
            f16.kv_bytes_per_token_per_layer().as_bytes(),
            4 * int4.kv_bytes_per_token_per_layer().as_bytes()
        );
    }

    #[test]
    fn kv_bytes_per_token_per_layer_matches_manual_computation() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        // 2 (K and V) * 8 kv heads * 128 dim * 2 bytes = 4096 bytes.
        assert_eq!(cfg.kv_bytes_per_token_per_layer().as_bytes(), 4096);
        assert_eq!(cfg.kv_bytes_per_token().as_bytes(), 4096 * 32);
    }

    #[test]
    fn layer_weight_bytes_dominated_by_experts() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let ratio = cfg.expert_weight_bytes_per_layer().as_bytes() as f64
            / cfg.layer_weight_bytes().as_bytes() as f64;
        assert!(
            ratio > 0.9,
            "experts should dominate layer weights, got {ratio}"
        );
    }

    #[test]
    fn gqa_group_sizes_match_published_architectures() {
        assert_eq!(MoeModelConfig::mixtral_8x7b().gqa_group_size(), 4);
        assert_eq!(MoeModelConfig::mixtral_8x22b().gqa_group_size(), 6);
        assert_eq!(MoeModelConfig::dbrx().gqa_group_size(), 6);
    }

    #[test]
    fn validate_rejects_inconsistent_configs() {
        let mut cfg = MoeModelConfig::tiny();
        cfg.top_k = 9;
        assert!(cfg.validate().is_err());
        let mut cfg = MoeModelConfig::tiny();
        cfg.num_q_heads = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = MoeModelConfig::tiny();
        cfg.num_layers = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MoeModelConfig::tiny();
        cfg.num_kv_heads = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MoeModelConfig::tiny();
        cfg.d_ff = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn hidden_and_qkv_bytes_scale_linearly_with_tokens() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        assert_eq!(
            cfg.hidden_state_bytes(10).as_bytes(),
            10 * cfg.hidden_state_bytes(1).as_bytes()
        );
        assert_eq!(cfg.qkv_bytes(8).as_bytes(), 8 * cfg.qkv_bytes(1).as_bytes());
        // QKV projection output is wider than the hidden state for Mixtral (32+16 heads).
        assert!(cfg.qkv_bytes(1) > cfg.hidden_state_bytes(1));
    }
}
