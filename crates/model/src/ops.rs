//! Per-operator FLOPs / bytes characterization of a MoE transformer layer.
//!
//! The paper's performance model (§4.2) computes, for every computation `x`, its
//! theoretical FLOP count and the bytes it must move, then bounds its execution time
//! with the Hierarchical Roofline Model. This module produces those numbers for the
//! operators of one transformer layer in the decode and prefill stages, split into
//! the task granularity used by CGOPipe:
//!
//! * **pre-attention** — RMSNorm + QKV projection (GPU task `A_x` in Fig. 6),
//! * **attention core** — the GQA softmax part over the KV cache (CPU task `B_x`),
//! * **post-attention** — output projection, router and MoE FFN (GPU task `C_x`).

use crate::arch::MoeModelConfig;
use moe_hardware::{ByteSize, FlopCount};
use serde::{Deserialize, Serialize};

/// Generation stage a cost refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Prompt processing: all prompt tokens of a request in one pass.
    Prefill,
    /// Auto-regressive generation: one token per sequence per pass.
    Decode,
}

/// FLOPs and byte traffic of one operator invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Floating point operations performed.
    pub flops: FlopCount,
    /// Bytes of model weights read.
    pub weight_bytes: ByteSize,
    /// Bytes of activations read and written (hidden states, projections).
    pub activation_bytes: ByteSize,
    /// Bytes of KV cache read or written.
    pub kv_bytes: ByteSize,
}

impl OpCost {
    /// Total bytes moved by the operator.
    pub fn total_bytes(&self) -> ByteSize {
        self.weight_bytes + self.activation_bytes + self.kv_bytes
    }

    /// Operational intensity with respect to all bytes the operator touches
    /// (FLOPs / byte, the x-axis of a roofline plot).
    pub fn operational_intensity(&self) -> f64 {
        self.flops / self.total_bytes()
    }

    /// Operational intensity with respect to an arbitrary byte count — used for the
    /// HRM's cross-level intensities `I^j_x` (e.g. FLOPs per byte *transferred from
    /// CPU memory*, which differs from FLOPs per byte touched in GPU memory).
    pub fn intensity_wrt(&self, bytes: ByteSize) -> f64 {
        self.flops / bytes
    }

    /// Sums two costs (e.g. to aggregate a task group).
    pub fn combine(&self, other: &OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            weight_bytes: self.weight_bytes + other.weight_bytes,
            activation_bytes: self.activation_bytes + other.activation_bytes,
            kv_bytes: self.kv_bytes + other.kv_bytes,
        }
    }
}

/// Computes operator costs for a single layer of a given model.
#[derive(Debug, Clone)]
pub struct LayerOps {
    cfg: MoeModelConfig,
}

impl LayerOps {
    /// Creates an operator cost calculator for `cfg`.
    pub fn new(cfg: MoeModelConfig) -> Self {
        LayerOps { cfg }
    }

    /// The model configuration this calculator was built from.
    pub fn config(&self) -> &MoeModelConfig {
        &self.cfg
    }

    fn wbytes(&self, params: u64) -> ByteSize {
        ByteSize::from_bytes(self.cfg.weight_dtype.bytes_for(params))
    }

    fn abytes(&self, elems: u64) -> ByteSize {
        ByteSize::from_bytes(self.cfg.weight_dtype.bytes_for(elems))
    }

    /// Pre-attention task: RMSNorm + QKV projection for `tokens` tokens.
    pub fn pre_attention(&self, tokens: u64) -> OpCost {
        let d = u64::from(self.cfg.d_model);
        let q_dim = u64::from(self.cfg.num_q_heads) * u64::from(self.cfg.head_dim);
        let kv_dim = u64::from(self.cfg.num_kv_heads) * u64::from(self.cfg.head_dim);
        let proj_params = d * (q_dim + 2 * kv_dim);
        let flops = 2.0 * tokens as f64 * proj_params as f64 + 4.0 * tokens as f64 * d as f64;
        OpCost {
            flops: FlopCount::from_flops(flops),
            weight_bytes: self.wbytes(proj_params + d),
            activation_bytes: self.abytes(tokens * (d + q_dim + 2 * kv_dim)),
            kv_bytes: ByteSize::ZERO,
        }
    }

    /// Attention core (decode): the GQA softmax part over a KV cache of `context_len`
    /// tokens, for `tokens` query tokens (one per sequence).
    ///
    /// This is the computation CGOPipe places on the CPU; its KV bytes dominate and
    /// its operational intensity is independent of the batch size (paper §3.3).
    pub fn attention_core_decode(&self, tokens: u64, context_len: u64) -> OpCost {
        let nq = u64::from(self.cfg.num_q_heads);
        let nkv = u64::from(self.cfg.num_kv_heads);
        let hd = u64::from(self.cfg.head_dim);
        // QK^T and A·V per query head over the full context, plus softmax.
        let flops = 4.0 * (tokens * nq * hd * context_len) as f64
            + 5.0 * (tokens * nq * context_len) as f64;
        let kv_elems = 2 * nkv * context_len * hd * tokens;
        let kv_bytes = ByteSize::from_bytes(self.cfg.kv_dtype.bytes_for(kv_elems));
        OpCost {
            flops: FlopCount::from_flops(flops),
            weight_bytes: ByteSize::ZERO,
            activation_bytes: self.abytes(tokens * 2 * nq * hd),
            kv_bytes,
        }
    }

    /// Appending the new token's K/V vectors to the cache (write traffic).
    pub fn kv_append(&self, tokens: u64) -> ByteSize {
        self.cfg.kv_bytes_per_token_per_layer() * tokens
    }

    /// Output projection for `tokens` tokens.
    pub fn o_projection(&self, tokens: u64) -> OpCost {
        let d = u64::from(self.cfg.d_model);
        let q_dim = u64::from(self.cfg.num_q_heads) * u64::from(self.cfg.head_dim);
        let params = q_dim * d;
        OpCost {
            flops: FlopCount::from_flops(2.0 * tokens as f64 * params as f64),
            weight_bytes: self.wbytes(params),
            activation_bytes: self.abytes(tokens * (q_dim + d)),
            kv_bytes: ByteSize::ZERO,
        }
    }

    /// Router (gating network) for `tokens` tokens.
    pub fn router(&self, tokens: u64) -> OpCost {
        let d = u64::from(self.cfg.d_model);
        let e = u64::from(self.cfg.num_experts);
        OpCost {
            flops: FlopCount::from_flops(2.0 * (tokens * d * e) as f64),
            weight_bytes: self.wbytes(d * e),
            activation_bytes: self.abytes(tokens * (d + e)),
            kv_bytes: ByteSize::ZERO,
        }
    }

    /// Expected number of *distinct* experts activated by `tokens` tokens under
    /// uniform routing: `n_e · (1 − (1 − k/n_e)^tokens)`.
    ///
    /// For the large micro-batches of throughput-oriented inference this saturates at
    /// `n_e`, which is why the paper models the whole layer's expert weights as read
    /// once per micro-batch.
    pub fn expected_experts_touched(&self, tokens: u64) -> f64 {
        let ne = f64::from(self.cfg.num_experts);
        let k = f64::from(self.cfg.top_k);
        if tokens == 0 {
            return 0.0;
        }
        ne * (1.0 - (1.0 - k / ne).powf(tokens as f64))
    }

    /// MoE FFN for `tokens` tokens.
    ///
    /// FLOPs scale with `top_k · tokens`; weight bytes scale with the number of
    /// *distinct* experts touched, which is what makes the FFN's operational intensity
    /// grow with micro-batch size (Fig. 5 of the paper).
    pub fn moe_ffn(&self, tokens: u64) -> OpCost {
        let per_expert = self.cfg.params_per_expert();
        let flops = 2.0 * (tokens as f64) * f64::from(self.cfg.top_k) * per_expert as f64
            + 3.0 * (tokens as f64) * f64::from(self.cfg.top_k) * f64::from(self.cfg.d_ff);
        let experts_touched = self.expected_experts_touched(tokens);
        let weight_bytes = ByteSize::from_bytes(
            (self.cfg.weight_dtype.bytes_for(per_expert) as f64 * experts_touched).round() as u64,
        );
        let act_elems = tokens
            * (u64::from(self.cfg.d_model) * 2
                + u64::from(self.cfg.top_k) * u64::from(self.cfg.d_ff));
        OpCost {
            flops: FlopCount::from_flops(flops),
            weight_bytes,
            activation_bytes: self.abytes(act_elems),
            kv_bytes: ByteSize::ZERO,
        }
    }

    /// Post-attention task: output projection + router + MoE FFN (the GPU task `C_x`
    /// of CGOPipe).
    pub fn post_attention(&self, tokens: u64) -> OpCost {
        self.o_projection(tokens)
            .combine(&self.router(tokens))
            .combine(&self.moe_ffn(tokens))
    }

    /// Complete decode-stage cost of one layer for a micro-batch of `tokens` tokens
    /// with context length `context_len`.
    pub fn decode_layer(&self, tokens: u64, context_len: u64) -> OpCost {
        self.pre_attention(tokens)
            .combine(&self.attention_core_decode(tokens, context_len))
            .combine(&self.post_attention(tokens))
    }

    /// Prefill cost of one layer for `batch` sequences of `prompt_len` tokens.
    ///
    /// The attention term is quadratic in the prompt length; projections and FFN are
    /// linear in the total token count.
    pub fn prefill_layer(&self, batch: u64, prompt_len: u64) -> OpCost {
        let tokens = batch * prompt_len;
        let nq = u64::from(self.cfg.num_q_heads);
        let hd = u64::from(self.cfg.head_dim);
        // Causal attention: sum over positions ≈ prompt_len²/2 per sequence.
        let attn_flops = 4.0 * (batch * nq * hd) as f64 * (prompt_len as f64).powi(2) / 2.0;
        let base = self
            .pre_attention(tokens)
            .combine(&self.o_projection(tokens))
            .combine(&self.router(tokens))
            .combine(&self.moe_ffn(tokens));
        let kv_write = self.kv_append(tokens);
        OpCost {
            flops: base.flops + FlopCount::from_flops(attn_flops),
            weight_bytes: base.weight_bytes,
            activation_bytes: base.activation_bytes,
            kv_bytes: base.kv_bytes + kv_write,
        }
    }

    /// Bytes of layer weights that must be present on the executing device for the
    /// FFN path (experts + router) — the quantity streamed over PCIe when the FFN runs
    /// on GPU with weights held in CPU memory.
    pub fn ffn_weight_bytes(&self) -> ByteSize {
        self.cfg.expert_weight_bytes_per_layer()
            + ByteSize::from_bytes(
                self.cfg
                    .weight_dtype
                    .bytes_for(self.cfg.router_params_per_layer()),
            )
    }

    /// Bytes of attention weights (QKVO projections) of one layer.
    pub fn attention_weight_bytes(&self) -> ByteSize {
        self.cfg.attention_weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_hardware::DType;

    fn mixtral_ops() -> LayerOps {
        LayerOps::new(MoeModelConfig::mixtral_8x7b())
    }

    #[test]
    fn attention_intensity_is_independent_of_batch_size() {
        let ops = mixtral_ops();
        let i1 = ops.attention_core_decode(1, 512).operational_intensity();
        let i64 = ops.attention_core_decode(64, 512).operational_intensity();
        let rel = (i1 - i64).abs() / i1;
        assert!(
            rel < 1e-9,
            "attention intensity must not depend on batch: {i1} vs {i64}"
        );
    }

    #[test]
    fn attention_intensity_matches_gqa_analysis() {
        // For GQA with group size g and f16 KV cache the intensity approaches
        // 4·g·ctx·hd / (2·ctx·hd·2) = g per byte-pair ≈ 2·g / bytes_per_elem = 4.
        let ops = mixtral_ops();
        let i = ops.attention_core_decode(1, 4096).operational_intensity();
        assert!(
            (3.0..6.0).contains(&i),
            "f16 GQA intensity should be ≈4, got {i}"
        );
    }

    #[test]
    fn int4_kv_quadruples_attention_intensity() {
        let f16 = mixtral_ops();
        let int4 = LayerOps::new(MoeModelConfig::mixtral_8x7b().with_kv_dtype(DType::Int4));
        let i_f16 = f16.attention_core_decode(8, 512).operational_intensity();
        let i_int4 = int4.attention_core_decode(8, 512).operational_intensity();
        let ratio = i_int4 / i_f16;
        assert!((3.5..4.5).contains(&ratio), "expected ≈4x, got {ratio}");
    }

    #[test]
    fn ffn_intensity_grows_with_micro_batch() {
        let ops = mixtral_ops();
        let small = ops.moe_ffn(8).operational_intensity();
        let large = ops.moe_ffn(512).operational_intensity();
        assert!(
            large > 4.0 * small,
            "FFN intensity must grow with batch: {small} -> {large}"
        );
    }

    #[test]
    fn ffn_flops_scale_linearly_with_tokens() {
        let ops = mixtral_ops();
        let a = ops.moe_ffn(16).flops.as_flops();
        let b = ops.moe_ffn(32).flops.as_flops();
        assert!((b / a - 2.0).abs() < 0.01);
    }

    #[test]
    fn expected_experts_touched_saturates_at_expert_count() {
        let ops = mixtral_ops();
        assert_eq!(ops.expected_experts_touched(0), 0.0);
        let one = ops.expected_experts_touched(1);
        assert!(
            (one - 2.0).abs() < 1e-9,
            "one token touches top_k experts, got {one}"
        );
        let many = ops.expected_experts_touched(10_000);
        assert!((many - 8.0).abs() < 1e-6);
        assert!(ops.expected_experts_touched(4) < ops.expected_experts_touched(16));
    }

    #[test]
    fn decode_layer_flops_match_active_params_estimate() {
        // Per-token decode FLOPs ≈ 2 × active parameters per layer (plus small
        // attention-over-context term). Check the projection/FFN part dominates and is
        // within 30 % of the 2·params rule of thumb for a short context.
        let cfg = MoeModelConfig::mixtral_8x7b();
        let ops = LayerOps::new(cfg.clone());
        let cost = ops.decode_layer(1, 16);
        let rule_of_thumb = 2.0 * cfg.active_params_per_layer() as f64;
        let ratio = cost.flops.as_flops() / rule_of_thumb;
        assert!((0.9..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefill_attention_term_grows_quadratically() {
        let ops = mixtral_ops();
        // Remove every linear term (projections, router, FFN); the remaining causal
        // attention term must grow ~4x when the prompt doubles.
        let linear_part = |p: u64| {
            ops.pre_attention(p)
                .combine(&ops.o_projection(p))
                .combine(&ops.router(p))
                .combine(&ops.moe_ffn(p))
                .flops
                .as_flops()
        };
        let f512 = ops.prefill_layer(1, 512).flops.as_flops() - linear_part(512);
        let f1024 = ops.prefill_layer(1, 1024).flops.as_flops() - linear_part(1024);
        assert!(
            f1024 > 3.5 * f512,
            "attention term should be quadratic: {f512} -> {f1024}"
        );
    }

    #[test]
    fn post_attention_is_sum_of_parts() {
        let ops = mixtral_ops();
        let combined = ops.post_attention(32);
        let manual = ops
            .o_projection(32)
            .combine(&ops.router(32))
            .combine(&ops.moe_ffn(32));
        assert_eq!(combined, manual);
    }

    #[test]
    fn kv_append_matches_config_sizing() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let ops = LayerOps::new(cfg.clone());
        assert_eq!(ops.kv_append(10), cfg.kv_bytes_per_token_per_layer() * 10);
    }

    #[test]
    fn ffn_weight_bytes_cover_all_experts_and_router() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let ops = LayerOps::new(cfg.clone());
        assert!(ops.ffn_weight_bytes() > cfg.expert_weight_bytes_per_layer());
        assert!(ops.attention_weight_bytes() < ops.ffn_weight_bytes());
    }

    #[test]
    fn op_cost_combine_and_intensity_helpers() {
        let a = OpCost {
            flops: FlopCount::from_flops(100.0),
            weight_bytes: ByteSize::from_bytes(10),
            activation_bytes: ByteSize::from_bytes(5),
            kv_bytes: ByteSize::from_bytes(5),
        };
        let b = a.combine(&a);
        assert_eq!(b.flops.as_flops(), 200.0);
        assert_eq!(b.total_bytes().as_bytes(), 40);
        assert!((a.operational_intensity() - 5.0).abs() < 1e-12);
        assert!((a.intensity_wrt(ByteSize::from_bytes(50)) - 2.0).abs() < 1e-12);
    }
}
