//! MoE model architectures, per-operator cost characterization and a reference
//! numeric implementation.
//!
//! Three views of a Mixture-of-Experts transformer live here:
//!
//! * [`arch::MoeModelConfig`] — the architectural description (Tab. 1 of the paper)
//!   with presets for Mixtral 8x7B, Mixtral 8x22B and DBRX, and exact weight/KV-cache
//!   byte accounting.
//! * [`ops::LayerOps`] — theoretical FLOPs and byte traffic per operator and stage,
//!   the inputs to the Hierarchical Roofline Model and the policy optimizer (§4.2).
//! * [`reference::ReferenceMoeModel`] — a small, fully functional numeric MoE
//!   decoder used by the offloading runtime and end-to-end tests.
//!
//! # Examples
//!
//! ```
//! use moe_model::arch::MoeModelConfig;
//! use moe_model::ops::LayerOps;
//!
//! let cfg = MoeModelConfig::mixtral_8x7b();
//! // The whole model does not fit a 16 GB T4:
//! assert!(cfg.total_weight_bytes().as_gib() > 80.0);
//!
//! // MoE FFN operational intensity grows with the micro-batch size (Fig. 5):
//! let ops = LayerOps::new(cfg);
//! assert!(ops.moe_ffn(256).operational_intensity() > ops.moe_ffn(16).operational_intensity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod ops;
pub mod reference;

pub use arch::MoeModelConfig;
pub use ops::{LayerOps, OpCost, Stage};
pub use reference::ReferenceMoeModel;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ffn_intensity_monotonic_in_micro_batch(a in 1u64..512, b in 1u64..512) {
            let ops = LayerOps::new(MoeModelConfig::mixtral_8x7b());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let i_lo = ops.moe_ffn(lo).operational_intensity();
            let i_hi = ops.moe_ffn(hi).operational_intensity();
            prop_assert!(i_hi >= i_lo * 0.999,
                "FFN intensity must be non-decreasing in tokens: {} -> {}", i_lo, i_hi);
        }

        #[test]
        fn decode_cost_monotonic_in_context(tokens in 1u64..64, c1 in 1u64..4096, c2 in 1u64..4096) {
            let ops = LayerOps::new(MoeModelConfig::mixtral_8x7b());
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let a = ops.decode_layer(tokens, lo);
            let b = ops.decode_layer(tokens, hi);
            prop_assert!(b.flops.as_flops() >= a.flops.as_flops());
            prop_assert!(b.kv_bytes >= a.kv_bytes);
        }

        #[test]
        fn weight_bytes_scale_with_dtype_width(layers in 1u32..8, d in 64u32..512) {
            use moe_hardware::DType;
            let mut cfg = MoeModelConfig::tiny();
            cfg.num_layers = layers;
            cfg.d_model = d;
            let f32_cfg = cfg.with_weight_dtype(DType::F32);
            let f16_cfg = cfg.with_weight_dtype(DType::F16);
            let ratio = f32_cfg.total_weight_bytes().as_bytes() as f64
                / f16_cfg.total_weight_bytes().as_bytes() as f64;
            prop_assert!((ratio - 2.0).abs() < 0.01);
        }

        #[test]
        fn expected_experts_touched_is_bounded(tokens in 0u64..100_000) {
            let ops = LayerOps::new(MoeModelConfig::dbrx());
            let e = ops.expected_experts_touched(tokens);
            prop_assert!((0.0..=16.0 + 1e-9).contains(&e));
            if tokens >= 1 {
                prop_assert!(e >= 4.0 - 1e-9, "at least top_k experts touched");
            }
        }

        #[test]
        fn routing_always_selects_top_k_distinct_experts(seed in 0u64..200, scale in 0.01f32..2.0) {
            let cfg = MoeModelConfig::tiny();
            let model = reference::ReferenceMoeModel::random(&cfg, seed).unwrap();
            let x: Vec<f32> = (0..cfg.d_model).map(|i| ((i as f32).sin()) * scale).collect();
            let routing = model.route(&model.layers[0], &x).unwrap();
            prop_assert_eq!(routing.experts.len(), cfg.top_k as usize);
            let mut idx: Vec<usize> = routing.experts.iter().map(|(i, _)| *i).collect();
            idx.sort_unstable();
            idx.dedup();
            prop_assert_eq!(idx.len(), cfg.top_k as usize, "experts must be distinct");
            let total: f32 = routing.experts.iter().map(|(_, w)| w).sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }
}
