//! Generation of roofline plot series (the data behind Figs. 4 and 5 of the paper).
//!
//! The benchmark binaries print these series as aligned text tables / CSV so the
//! plots can be regenerated with any plotting tool; nothing in the workspace depends
//! on a graphics stack.

use crate::hierarchical::{HierarchicalRoofline, HrmError, LevelId};
use crate::roofline::log_space;
use serde::{Deserialize, Serialize};

/// A named line on a roofline plot: performance (GFLOPS/s) as a function of
/// operational intensity (FLOPs/byte).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoofSeries {
    /// Legend label, e.g. `"CPU-GPU Mem Bdw"`.
    pub name: String,
    /// `(intensity, gflops_per_sec)` samples.
    pub points: Vec<(f64, f64)>,
}

impl RoofSeries {
    /// Performance value at the sample closest to `intensity`.
    ///
    /// Returns `None` for an empty series.
    pub fn value_near(&self, intensity: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - intensity).abs();
                let db = (b.0 - intensity).abs();
                da.total_cmp(&db)
            })
            .map(|p| p.1)
    }
}

/// A vertical marker: the operational intensity of a specific computation or a
/// turning point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntensityMarker {
    /// Label, e.g. `"Attention f16"` or `"P1"`.
    pub name: String,
    /// Operational intensity in FLOPs/byte.
    pub intensity: f64,
}

/// The complete data of a hierarchical roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePlot {
    /// Title of the plot.
    pub title: String,
    /// Roof lines.
    pub series: Vec<RoofSeries>,
    /// Vertical markers (kernel intensities, turning points).
    pub markers: Vec<IntensityMarker>,
}

impl RooflinePlot {
    /// Adds a vertical marker.
    pub fn add_marker(&mut self, name: impl Into<String>, intensity: f64) {
        self.markers.push(IntensityMarker {
            name: name.into(),
            intensity,
        });
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&RoofSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Builds the five-roof HRM plot of the paper (GPU/CPU memory roofs, CPU→GPU link
/// roof and both compute roofs) over a log-spaced intensity grid.
///
/// # Errors
///
/// Returns an error if the HRM does not contain the two referenced levels.
///
/// # Panics
///
/// Panics if the grid parameters are invalid (see [`log_space`]).
pub fn hrm_plot(
    hrm: &HierarchicalRoofline,
    exec: LevelId,
    data: LevelId,
    title: impl Into<String>,
    intensity_lo: f64,
    intensity_hi: f64,
    samples: usize,
) -> Result<RooflinePlot, HrmError> {
    let exec_level = hrm.level(exec)?.clone();
    let data_level = hrm.level(data)?.clone();
    let link = hrm.cross_bandwidth(data, exec)?;
    let grid = log_space(intensity_lo, intensity_hi, samples);

    let ramp = |bw_bytes_per_sec: f64| -> Vec<(f64, f64)> {
        grid.iter()
            .map(|&i| (i, bw_bytes_per_sec * i / 1e9))
            .collect()
    };
    let flat = |flops_per_sec: f64| -> Vec<(f64, f64)> {
        grid.iter().map(|&i| (i, flops_per_sec / 1e9)).collect()
    };

    let series = vec![
        RoofSeries {
            name: format!("{} Mem Bdw", data_level.name),
            points: ramp(data_level.bandwidth.as_bytes_per_sec()),
        },
        RoofSeries {
            name: format!("{} Mem Bdw", exec_level.name),
            points: ramp(exec_level.bandwidth.as_bytes_per_sec()),
        },
        RoofSeries {
            name: format!("{}-{} Mem Bdw", data_level.name, exec_level.name),
            points: ramp(link.as_bytes_per_sec()),
        },
        RoofSeries {
            name: format!("{} Peak FLOPS", data_level.name),
            points: flat(data_level.peak_compute.as_flops_per_sec()),
        },
        RoofSeries {
            name: format!("{} Peak FLOPS", exec_level.name),
            points: flat(exec_level.peak_compute.as_flops_per_sec()),
        },
    ];

    Ok(RooflinePlot {
        title: title.into(),
        series,
        markers: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_hardware::NodeSpec;

    fn plot() -> RooflinePlot {
        let hrm = HierarchicalRoofline::from_node(&NodeSpec::l4_single());
        hrm_plot(&hrm, hrm.gpu(), hrm.cpu(), "L4", 0.1, 10_000.0, 64).unwrap()
    }

    #[test]
    fn plot_contains_five_roofs() {
        let p = plot();
        assert_eq!(p.series.len(), 5);
        assert!(p.series_named("CPU-GPU Mem Bdw").is_some());
        assert!(p.series_named("GPU Peak FLOPS").is_some());
        assert!(p.series_named("nonexistent").is_none());
    }

    #[test]
    fn memory_roofs_scale_linearly_with_intensity() {
        let p = plot();
        let roof = p.series_named("GPU Mem Bdw").unwrap();
        let lo = roof.points.first().unwrap();
        let hi = roof.points.last().unwrap();
        let slope_lo = lo.1 / lo.0;
        let slope_hi = hi.1 / hi.0;
        assert!(
            (slope_lo - slope_hi).abs() / slope_lo < 1e-9,
            "memory roof must be a line through the origin"
        );
    }

    #[test]
    fn compute_roofs_are_flat_and_ordered() {
        let p = plot();
        let gpu = p.series_named("GPU Peak FLOPS").unwrap();
        let cpu = p.series_named("CPU Peak FLOPS").unwrap();
        let gpu_vals: Vec<f64> = gpu.points.iter().map(|x| x.1).collect();
        assert!(gpu_vals.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        assert!(gpu.points[0].1 > cpu.points[0].1);
    }

    #[test]
    fn link_roof_below_both_memory_roofs() {
        let p = plot();
        let link = p.series_named("CPU-GPU Mem Bdw").unwrap();
        let cpu = p.series_named("CPU Mem Bdw").unwrap();
        for (l, c) in link.points.iter().zip(&cpu.points) {
            assert!(l.1 <= c.1 + 1e-9);
        }
    }

    #[test]
    fn value_near_picks_closest_sample() {
        let s = RoofSeries {
            name: "x".into(),
            points: vec![(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)],
        };
        assert_eq!(s.value_near(1.9), Some(20.0));
        assert_eq!(s.value_near(100.0), Some(40.0));
        let empty = RoofSeries {
            name: "e".into(),
            points: vec![],
        };
        assert_eq!(empty.value_near(1.0), None);
    }

    #[test]
    fn markers_can_be_added_and_serialized() {
        let mut p = plot();
        p.add_marker("P1", 55.0);
        p.add_marker("Attention f16", 4.0);
        assert_eq!(p.markers.len(), 2);
        assert!(p.markers.iter().any(|m| m.name == "P1"));
    }
}
