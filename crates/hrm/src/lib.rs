//! Classical and Hierarchical Roofline Models (HRM) — §3 of the MoE-Lightning paper.
//!
//! * [`roofline`] — the classical single-level roofline: compute roof, memory roof,
//!   ridge point.
//! * [`hierarchical`] — the paper's HRM: multiple memory levels, cross-level memory
//!   roofs, the turning points **P1** (Eq. 9) and **P2** (Eq. 10) and the balance
//!   point (Eq. 11) that the policy optimizer steers towards.
//! * [`plot`] — roofline plot series generation (the data behind Figs. 4 and 5).
//!
//! # Examples
//!
//! ```
//! use moe_hardware::NodeSpec;
//! use moe_hrm::HierarchicalRoofline;
//!
//! # fn main() -> Result<(), moe_hrm::HrmError> {
//! let hrm = HierarchicalRoofline::from_node(&NodeSpec::l4_single());
//! // GQA attention in f16 has an operational intensity of ≈4 FLOPs/byte, far below
//! // the P1 turning point on an L4 node — so the paper runs attention on the CPU.
//! let p1 = hrm.turning_point_p1(hrm.gpu(), hrm.cpu())?;
//! assert!(4.0 < p1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchical;
pub mod plot;
pub mod roofline;

pub use hierarchical::{BindingRoof, HierarchicalRoofline, HrmError, LevelId, MemoryLevel};
pub use plot::{IntensityMarker, RoofSeries, RooflinePlot};
pub use roofline::{BoundKind, Roofline};

#[cfg(test)]
mod proptests {
    use super::*;
    use moe_hardware::NodeSpec;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn attainable_is_monotone_in_intensity(i1 in 0.01f64..1e5, i2 in 0.01f64..1e5) {
            let hrm = HierarchicalRoofline::from_node(&NodeSpec::t4_single());
            let (lo, hi) = if i1 <= i2 { (i1, i2) } else { (i2, i1) };
            let a = hrm.attainable_local(hrm.gpu(), lo).unwrap().as_flops_per_sec();
            let b = hrm.attainable_local(hrm.gpu(), hi).unwrap().as_flops_per_sec();
            prop_assert!(b >= a);
        }

        #[test]
        fn cross_attainable_bounded_by_all_three_roofs(
            local in 0.01f64..1e5,
            cross in 0.01f64..1e5,
        ) {
            let hrm = HierarchicalRoofline::from_node(&NodeSpec::l4_single());
            let gpu = hrm.level(hrm.gpu()).unwrap();
            let link = hrm.cross_bandwidth(hrm.cpu(), hrm.gpu()).unwrap();
            let p = hrm
                .attainable_cross(hrm.gpu(), hrm.cpu(), local, cross)
                .unwrap()
                .as_flops_per_sec();
            prop_assert!(p <= gpu.peak_compute.as_flops_per_sec() + 1.0);
            prop_assert!(p <= gpu.bandwidth.as_bytes_per_sec() * local + 1.0);
            prop_assert!(p <= link.as_bytes_per_sec() * cross + 1.0);
        }

        #[test]
        fn p2_never_exceeds_compute_roof_over_link(local in 0.01f64..1e6) {
            let hrm = HierarchicalRoofline::from_node(&NodeSpec::l4_single());
            let gpu = hrm.level(hrm.gpu()).unwrap();
            let link = hrm.cross_bandwidth(hrm.cpu(), hrm.gpu()).unwrap();
            let p2 = hrm.turning_point_p2(hrm.gpu(), hrm.cpu(), local).unwrap();
            let ceiling = gpu.peak_compute.as_flops_per_sec() / link.as_bytes_per_sec();
            prop_assert!(p2 <= ceiling + 1e-9);
        }

        #[test]
        fn balance_point_at_least_local_intensity_when_hbm_faster_than_link(
            local in 0.01f64..1e4,
        ) {
            let hrm = HierarchicalRoofline::from_node(&NodeSpec::t4_single());
            let b = hrm.balance_point(hrm.gpu(), hrm.cpu(), local).unwrap();
            prop_assert!(b >= local, "HBM bandwidth exceeds PCIe, so I^cpu must exceed I^gpu at balance");
        }

        #[test]
        fn roofline_efficiency_in_unit_interval(
            tflops in 0.1f64..400.0,
            gbps in 1.0f64..3000.0,
            intensity in 0.001f64..1e6,
        ) {
            use moe_hardware::{Bandwidth, ComputeRate};
            let r = Roofline::new(
                ComputeRate::from_tflops_per_sec(tflops),
                Bandwidth::from_gb_per_sec(gbps),
            );
            let e = r.efficiency(intensity);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&e));
        }
    }
}
