//! The classical (single-level) Roofline Model of Williams, Waterman and Patterson,
//! as summarized in §3.1 of the paper.
//!
//! A roofline bounds the attainable performance `P` of a kernel with operational
//! intensity `I` (FLOPs per byte) by
//!
//! ```text
//! P ≤ min(P_peak, B_peak · I)
//! ```
//!
//! The intersection `Ī = P_peak / B_peak` is the *ridge point*: kernels with
//! `I < Ī` are memory-bound, kernels with `I ≥ Ī` are compute-bound.

use moe_hardware::{Bandwidth, ComputeRate};
use serde::{Deserialize, Serialize};

/// A single compute-roof / memory-roof pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute rate (`P_peak`).
    pub peak_compute: ComputeRate,
    /// Peak memory bandwidth (`B_peak`).
    pub peak_bandwidth: Bandwidth,
}

/// Which resource bounds a kernel at a given operational intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundKind {
    /// Performance is limited by memory bandwidth (`B·I < P_peak`).
    MemoryBound,
    /// Performance is limited by compute throughput.
    ComputeBound,
}

impl Roofline {
    /// Creates a roofline from a peak compute rate and bandwidth.
    pub fn new(peak_compute: ComputeRate, peak_bandwidth: Bandwidth) -> Self {
        Roofline {
            peak_compute,
            peak_bandwidth,
        }
    }

    /// Attainable performance (FLOPs/s) at operational intensity `intensity`
    /// (FLOPs/byte): `min(P_peak, B_peak · I)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use moe_hrm::roofline::Roofline;
    /// use moe_hardware::{Bandwidth, ComputeRate};
    ///
    /// let r = Roofline::new(
    ///     ComputeRate::from_tflops_per_sec(100.0),
    ///     Bandwidth::from_gb_per_sec(1000.0),
    /// );
    /// // Ridge point at I = 100 FLOPs/byte.
    /// assert!(r.attainable(10.0).as_tflops_per_sec() < 100.0);
    /// assert_eq!(r.attainable(1e6).as_tflops_per_sec(), 100.0);
    /// ```
    pub fn attainable(&self, intensity: f64) -> ComputeRate {
        let memory_bound = self.peak_bandwidth.as_bytes_per_sec() * intensity.max(0.0);
        ComputeRate::from_flops_per_sec(memory_bound.min(self.peak_compute.as_flops_per_sec()))
    }

    /// The ridge point `Ī = P_peak / B_peak` (FLOPs/byte). Returns infinity for a
    /// zero-bandwidth roofline.
    pub fn ridge_point(&self) -> f64 {
        if self.peak_bandwidth.is_zero() {
            f64::INFINITY
        } else {
            self.peak_compute.as_flops_per_sec() / self.peak_bandwidth.as_bytes_per_sec()
        }
    }

    /// Classifies a kernel with the given operational intensity.
    pub fn bound_kind(&self, intensity: f64) -> BoundKind {
        if intensity < self.ridge_point() {
            BoundKind::MemoryBound
        } else {
            BoundKind::ComputeBound
        }
    }

    /// Fraction of peak compute achieved at `intensity` (1.0 when compute-bound).
    pub fn efficiency(&self, intensity: f64) -> f64 {
        if self.peak_compute.is_zero() {
            return 0.0;
        }
        self.attainable(intensity).as_flops_per_sec() / self.peak_compute.as_flops_per_sec()
    }
}

/// Generates `n` log-spaced sample points between `lo` and `hi` (inclusive), the
/// usual x-axis grid of a roofline plot.
///
/// # Panics
///
/// Panics if `lo` or `hi` is not positive, `lo >= hi`, or `n < 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "log_space requires 0 < lo < hi");
    assert!(n >= 2, "log_space requires at least two points");
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    (0..n)
        .map(|i| (log_lo + (log_hi - log_lo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roof() -> Roofline {
        Roofline::new(
            ComputeRate::from_tflops_per_sec(100.0),
            Bandwidth::from_gb_per_sec(1000.0),
        )
    }

    #[test]
    fn ridge_point_is_peak_over_bandwidth() {
        assert!((roof().ridge_point() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn attainable_follows_memory_roof_below_ridge() {
        let r = roof();
        let p = r.attainable(10.0);
        assert!((p.as_tflops_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(r.bound_kind(10.0), BoundKind::MemoryBound);
    }

    #[test]
    fn attainable_clamps_to_compute_roof_above_ridge() {
        let r = roof();
        assert_eq!(r.attainable(500.0).as_tflops_per_sec(), 100.0);
        assert_eq!(r.bound_kind(500.0), BoundKind::ComputeBound);
        assert_eq!(
            r.bound_kind(100.0),
            BoundKind::ComputeBound,
            "ridge itself is compute bound"
        );
    }

    #[test]
    fn attainable_is_monotone_in_intensity() {
        let r = roof();
        let mut prev = 0.0;
        for i in [0.01, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let p = r.attainable(i).as_flops_per_sec();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn negative_intensity_is_clamped() {
        assert_eq!(roof().attainable(-5.0).as_flops_per_sec(), 0.0);
    }

    #[test]
    fn efficiency_is_bounded_by_one() {
        let r = roof();
        assert!((r.efficiency(1e9) - 1.0).abs() < 1e-12);
        assert!(r.efficiency(1.0) < 0.02);
        let degenerate = Roofline::new(ComputeRate::ZERO, Bandwidth::from_gb_per_sec(1.0));
        assert_eq!(degenerate.efficiency(10.0), 0.0);
    }

    #[test]
    fn zero_bandwidth_has_infinite_ridge() {
        let r = Roofline::new(ComputeRate::from_tflops_per_sec(1.0), Bandwidth::ZERO);
        assert!(r.ridge_point().is_infinite());
        assert_eq!(r.bound_kind(1e12), BoundKind::MemoryBound);
    }

    #[test]
    fn log_space_endpoints_and_monotonicity() {
        let g = log_space(0.1, 1000.0, 9);
        assert_eq!(g.len(), 9);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[8] - 1000.0).abs() < 1e-9);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "log_space requires")]
    fn log_space_rejects_bad_range() {
        log_space(10.0, 1.0, 5);
    }
}
