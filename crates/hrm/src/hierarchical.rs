//! The Hierarchical Roofline Model (HRM) of §3.2 of the paper.
//!
//! The HRM extends the classical roofline to a hierarchy of memory levels, each
//! coupled with a processor: level 0 is the GPU (HBM + SMs), level 1 the CPU
//! (DRAM + cores), and further levels (disk, remote memory) can be appended. Besides
//! each level's local roofline there are *cross-level* memory roofs
//! `P ≤ B^{j,i}_peak · I^j` for computations executed on level `i` whose data lives
//! on level `j`, which introduce the additional turning points P1 and P2 and the
//! balance point that drive MoE-Lightning's policy decisions.

use crate::roofline::{BoundKind, Roofline};
use moe_hardware::{Bandwidth, ByteSize, ComputeRate, NodeSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a memory level in the hierarchy (0 = fastest / closest to the compute
/// units used for dense kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LevelId(pub usize);

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One level of the memory hierarchy together with its coupled processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevel {
    /// Human-readable name, e.g. `"GPU"` or `"CPU"`.
    pub name: String,
    /// Memory capacity at this level (`m_i`).
    pub capacity: ByteSize,
    /// Peak bandwidth between the level's processor and its own memory (`B^i_peak`).
    pub bandwidth: Bandwidth,
    /// Peak compute rate of the processor coupled to this level (`P^i_peak`).
    pub peak_compute: ComputeRate,
}

impl MemoryLevel {
    /// The level's local roofline (Eq. 8 of the paper).
    pub fn roofline(&self) -> Roofline {
        Roofline::new(self.peak_compute, self.bandwidth)
    }
}

/// Errors produced by HRM queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HrmError {
    /// A referenced level does not exist.
    UnknownLevel(LevelId),
    /// A cross-level bandwidth was requested between a level and itself.
    SameLevel(LevelId),
}

impl fmt::Display for HrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HrmError::UnknownLevel(l) => write!(f, "unknown memory level {l}"),
            HrmError::SameLevel(l) => write!(
                f,
                "cross-level query requires two distinct levels, got {l} twice"
            ),
        }
    }
}

impl std::error::Error for HrmError {}

/// A full hierarchical roofline model: an ordered list of memory levels and the
/// cross-level bandwidths between adjacent pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalRoofline {
    levels: Vec<MemoryLevel>,
    /// `cross[i]` is the bandwidth between level `i+1` and level `i`
    /// (e.g. `cross[0]` = CPU→GPU link bandwidth).
    cross: Vec<Bandwidth>,
}

impl HierarchicalRoofline {
    /// Builds an HRM from explicit levels and cross-level bandwidths.
    ///
    /// `cross_bandwidths[i]` connects `levels[i+1]` to `levels[i]`, so its length must
    /// be `levels.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one level is supplied or the cross-bandwidth count does
    /// not match.
    pub fn new(levels: Vec<MemoryLevel>, cross_bandwidths: Vec<Bandwidth>) -> Self {
        assert!(!levels.is_empty(), "HRM needs at least one memory level");
        assert_eq!(
            cross_bandwidths.len(),
            levels.len() - 1,
            "need exactly one cross-level bandwidth per adjacent level pair"
        );
        HierarchicalRoofline {
            levels,
            cross: cross_bandwidths,
        }
    }

    /// Builds the two-level GPU/CPU HRM used throughout the paper from a hardware
    /// node description, using *effective* (derated) rates.
    pub fn from_node(node: &NodeSpec) -> Self {
        let gpu = MemoryLevel {
            name: "GPU".to_owned(),
            capacity: node.total_gpu_memory(),
            bandwidth: node.total_gpu_memory_bandwidth(),
            peak_compute: node.total_gpu_flops_f16(),
        };
        let cpu = MemoryLevel {
            name: "CPU".to_owned(),
            capacity: node.cpu_memory(),
            bandwidth: node.cpu_memory_bandwidth(),
            peak_compute: node.cpu_flops(),
        };
        HierarchicalRoofline::new(vec![gpu, cpu], vec![node.total_h2d_bandwidth()])
    }

    /// Number of memory levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Returns a level by id.
    ///
    /// # Errors
    ///
    /// Returns [`HrmError::UnknownLevel`] for an out-of-range id.
    pub fn level(&self, id: LevelId) -> Result<&MemoryLevel, HrmError> {
        self.levels.get(id.0).ok_or(HrmError::UnknownLevel(id))
    }

    /// The GPU level of a [`HierarchicalRoofline::from_node`] model.
    pub fn gpu(&self) -> LevelId {
        LevelId(0)
    }

    /// The CPU level of a [`HierarchicalRoofline::from_node`] model.
    pub fn cpu(&self) -> LevelId {
        LevelId(1)
    }

    /// Bandwidth for moving data from level `from` to level `to`
    /// (`B^{j,i}_peak`). Only adjacent or identical-path transfers are modeled;
    /// non-adjacent levels use the minimum bandwidth along the path.
    ///
    /// # Errors
    ///
    /// Returns an error if either level is unknown or the two levels are the same.
    pub fn cross_bandwidth(&self, from: LevelId, to: LevelId) -> Result<Bandwidth, HrmError> {
        self.level(from)?;
        self.level(to)?;
        if from == to {
            return Err(HrmError::SameLevel(from));
        }
        let (lo, hi) = if from.0 < to.0 {
            (from.0, to.0)
        } else {
            (to.0, from.0)
        };
        let min_bw = self.cross[lo..hi]
            .iter()
            .copied()
            .fold(f64::INFINITY, |acc, b| acc.min(b.as_bytes_per_sec()));
        Ok(Bandwidth::from_bytes_per_sec(min_bw))
    }

    /// Attainable performance for a computation executed on `level` with all data
    /// resident at that level — Eq. (8): `min(P^i, B^i · I^i)`.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown level.
    pub fn attainable_local(
        &self,
        level: LevelId,
        intensity: f64,
    ) -> Result<ComputeRate, HrmError> {
        Ok(self.level(level)?.roofline().attainable(intensity))
    }

    /// Attainable performance for a computation executed on `exec_level` that streams
    /// its data from `data_level` — Eq. (7):
    /// `min(P^i, B^i · I^i, B^{j,i} · I^j)`.
    ///
    /// * `local_intensity` — FLOPs per byte accessed in `exec_level`'s own memory.
    /// * `cross_intensity` — FLOPs per byte transferred from `data_level`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or identical levels.
    pub fn attainable_cross(
        &self,
        exec_level: LevelId,
        data_level: LevelId,
        local_intensity: f64,
        cross_intensity: f64,
    ) -> Result<ComputeRate, HrmError> {
        let local = self.attainable_local(exec_level, local_intensity)?;
        let link = self.cross_bandwidth(data_level, exec_level)?;
        let cross_bound = link.as_bytes_per_sec() * cross_intensity.max(0.0);
        Ok(ComputeRate::from_flops_per_sec(
            local.as_flops_per_sec().min(cross_bound),
        ))
    }

    /// Turning point **P1** (Eq. 9): the cross-level operational intensity `Ī^j`
    /// below which it is *not* beneficial to move the data from `data_level` to
    /// `exec_level` — executing at `data_level` is at least as fast.
    ///
    /// For intensities below the data level's own ridge point both sides scale
    /// linearly and the comparison is decided purely by bandwidths; the interesting
    /// crossover happens where the transfer bound meets the data level's compute
    /// roof, `Ī^j = P^j_peak / B^{j,i}`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or identical levels.
    pub fn turning_point_p1(
        &self,
        exec_level: LevelId,
        data_level: LevelId,
    ) -> Result<f64, HrmError> {
        let data = self.level(data_level)?;
        let link = self.cross_bandwidth(data_level, exec_level)?;
        if link.is_zero() {
            return Ok(f64::INFINITY);
        }
        Ok(data.peak_compute.as_flops_per_sec() / link.as_bytes_per_sec())
    }

    /// Turning point **P2** (Eq. 10): the cross-level operational intensity `Ī^j`
    /// below which the computation is bound by the `data_level → exec_level`
    /// transfer, given the performance the kernel can reach at `exec_level`
    /// (`min(P^i, B^i · I^i)`, determined by its *local* intensity, e.g. by the
    /// micro-batch size `μ` for the MoE FFN).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or identical levels.
    pub fn turning_point_p2(
        &self,
        exec_level: LevelId,
        data_level: LevelId,
        local_intensity: f64,
    ) -> Result<f64, HrmError> {
        let local = self.attainable_local(exec_level, local_intensity)?;
        let link = self.cross_bandwidth(data_level, exec_level)?;
        if link.is_zero() {
            return Ok(f64::INFINITY);
        }
        Ok(local.as_flops_per_sec() / link.as_bytes_per_sec())
    }

    /// Balance point (Eq. 11): given a kernel's local intensity on `exec_level`, the
    /// cross-level intensity `I^j` at which the local memory roof and the cross-level
    /// roof meet (`B^i · I^i = B^{j,i} · I^j`). Beyond this point increasing `I^j`
    /// (e.g. by enlarging the batch `N`) no longer helps.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or identical levels.
    pub fn balance_point(
        &self,
        exec_level: LevelId,
        data_level: LevelId,
        local_intensity: f64,
    ) -> Result<f64, HrmError> {
        let exec = self.level(exec_level)?;
        let link = self.cross_bandwidth(data_level, exec_level)?;
        if link.is_zero() {
            return Ok(f64::INFINITY);
        }
        Ok(exec.bandwidth.as_bytes_per_sec() * local_intensity / link.as_bytes_per_sec())
    }

    /// Classifies which roof binds a cross-level computation.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or identical levels.
    pub fn binding_roof(
        &self,
        exec_level: LevelId,
        data_level: LevelId,
        local_intensity: f64,
        cross_intensity: f64,
    ) -> Result<BindingRoof, HrmError> {
        let exec = self.level(exec_level)?;
        let link = self.cross_bandwidth(data_level, exec_level)?;
        let compute = exec.peak_compute.as_flops_per_sec();
        let local_mem = exec.bandwidth.as_bytes_per_sec() * local_intensity;
        let cross_mem = link.as_bytes_per_sec() * cross_intensity;
        let min = compute.min(local_mem).min(cross_mem);
        if (min - cross_mem).abs() < f64::EPSILON * min.max(1.0) {
            Ok(BindingRoof::CrossLevelBandwidth)
        } else if (min - local_mem).abs() < f64::EPSILON * min.max(1.0) {
            Ok(BindingRoof::LocalBandwidth)
        } else {
            Ok(BindingRoof::Compute)
        }
    }

    /// Whether a purely local kernel is compute- or memory-bound (classical roofline
    /// classification at the given level).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown level.
    pub fn local_bound_kind(&self, level: LevelId, intensity: f64) -> Result<BoundKind, HrmError> {
        Ok(self.level(level)?.roofline().bound_kind(intensity))
    }
}

/// The roof that limits a cross-level computation (see [`HierarchicalRoofline::binding_roof`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BindingRoof {
    /// Bounded by the executing processor's peak compute.
    Compute,
    /// Bounded by the executing level's own memory bandwidth.
    LocalBandwidth,
    /// Bounded by the cross-level (e.g. PCIe) bandwidth.
    CrossLevelBandwidth,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l4_hrm() -> HierarchicalRoofline {
        HierarchicalRoofline::from_node(&NodeSpec::l4_single())
    }

    #[test]
    fn from_node_builds_two_levels_with_gpu_faster() {
        let hrm = l4_hrm();
        assert_eq!(hrm.num_levels(), 2);
        let gpu = hrm.level(hrm.gpu()).unwrap();
        let cpu = hrm.level(hrm.cpu()).unwrap();
        assert!(gpu.peak_compute.as_flops_per_sec() > cpu.peak_compute.as_flops_per_sec());
        assert!(gpu.bandwidth.as_bytes_per_sec() > cpu.bandwidth.as_bytes_per_sec());
        assert!(gpu.capacity < cpu.capacity);
    }

    #[test]
    fn cross_bandwidth_is_symmetric_and_rejects_same_level() {
        let hrm = l4_hrm();
        let a = hrm.cross_bandwidth(hrm.cpu(), hrm.gpu()).unwrap();
        let b = hrm.cross_bandwidth(hrm.gpu(), hrm.cpu()).unwrap();
        assert_eq!(a, b);
        assert!(matches!(
            hrm.cross_bandwidth(hrm.gpu(), hrm.gpu()),
            Err(HrmError::SameLevel(_))
        ));
        assert!(matches!(
            hrm.cross_bandwidth(LevelId(5), hrm.gpu()),
            Err(HrmError::UnknownLevel(_))
        ));
    }

    #[test]
    fn attainable_cross_never_exceeds_local() {
        let hrm = l4_hrm();
        for i in [0.1, 1.0, 10.0, 100.0, 1000.0] {
            let local = hrm.attainable_local(hrm.gpu(), i).unwrap();
            let cross = hrm.attainable_cross(hrm.gpu(), hrm.cpu(), i, i).unwrap();
            assert!(cross.as_flops_per_sec() <= local.as_flops_per_sec() + 1e-6);
        }
    }

    #[test]
    fn low_cross_intensity_is_link_bound() {
        let hrm = l4_hrm();
        let roof = hrm.binding_roof(hrm.gpu(), hrm.cpu(), 1000.0, 1.0).unwrap();
        assert_eq!(roof, BindingRoof::CrossLevelBandwidth);
        let roof = hrm.binding_roof(hrm.gpu(), hrm.cpu(), 1.0, 1e9).unwrap();
        assert_eq!(roof, BindingRoof::LocalBandwidth);
        let roof = hrm.binding_roof(hrm.gpu(), hrm.cpu(), 1e9, 1e9).unwrap();
        assert_eq!(roof, BindingRoof::Compute);
    }

    #[test]
    fn p1_below_p2_for_realistic_ffn_intensity() {
        // For the L4 case study (Fig. 5): P1 = P_cpu / B_link is far below
        // P2 = P_gpu(μ=128) / B_link because the GPU kernel at μ=128 is much faster
        // than the CPU peak.
        let hrm = l4_hrm();
        // MoE FFN at μ=128 has local intensity ≈ 128/element-size; large enough to be
        // near the GPU compute roof region — use a representative value.
        let p1 = hrm.turning_point_p1(hrm.gpu(), hrm.cpu()).unwrap();
        let p2 = hrm.turning_point_p2(hrm.gpu(), hrm.cpu(), 64.0).unwrap();
        assert!(p1 < p2, "P1 ({p1}) must be below P2 ({p2})");
        assert!(
            p1 > 10.0 && p1 < 200.0,
            "P1 should be tens of FLOPs/byte, got {p1}"
        );
    }

    #[test]
    fn attention_intensity_sits_below_p1_on_l4() {
        // §3.3: GQA attention (f16) has I ≈ 4 FLOPs/byte, well below P1 on the L4
        // instance — i.e. it is better to run attention on the CPU.
        let hrm = l4_hrm();
        let p1 = hrm.turning_point_p1(hrm.gpu(), hrm.cpu()).unwrap();
        assert!(4.0 < p1, "attention intensity 4 should be below P1 = {p1}");
    }

    #[test]
    fn balance_point_scales_with_local_intensity() {
        let hrm = l4_hrm();
        let b1 = hrm.balance_point(hrm.gpu(), hrm.cpu(), 8.0).unwrap();
        let b2 = hrm.balance_point(hrm.gpu(), hrm.cpu(), 16.0).unwrap();
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
        assert!(
            b1 > 8.0,
            "GPU HBM is faster than the link, so balance point exceeds local intensity"
        );
    }

    #[test]
    fn turning_points_increase_with_slower_links() {
        let fast = HierarchicalRoofline::from_node(&NodeSpec::l4_single());
        let slow = HierarchicalRoofline::from_node(&NodeSpec::t4_single());
        // T4 has a slower PCIe link than L4, so both turning points move right.
        assert!(
            slow.turning_point_p1(slow.gpu(), slow.cpu()).unwrap()
                > fast.turning_point_p1(fast.gpu(), fast.cpu()).unwrap() * 0.9
        );
        assert!(
            slow.turning_point_p2(slow.gpu(), slow.cpu(), 64.0).unwrap()
                > fast.turning_point_p2(fast.gpu(), fast.cpu(), 64.0).unwrap() * 0.4
        );
    }

    #[test]
    fn zero_link_bandwidth_gives_infinite_turning_points() {
        let mut levels = vec![
            MemoryLevel {
                name: "GPU".into(),
                capacity: ByteSize::from_gib(16.0),
                bandwidth: Bandwidth::from_gb_per_sec(300.0),
                peak_compute: ComputeRate::from_tflops_per_sec(65.0),
            },
            MemoryLevel {
                name: "CPU".into(),
                capacity: ByteSize::from_gib(192.0),
                bandwidth: Bandwidth::from_gb_per_sec(100.0),
                peak_compute: ComputeRate::from_tflops_per_sec(1.3),
            },
        ];
        let hrm = HierarchicalRoofline::new(levels.clone(), vec![Bandwidth::ZERO]);
        assert!(hrm
            .turning_point_p1(LevelId(0), LevelId(1))
            .unwrap()
            .is_infinite());
        assert!(hrm
            .turning_point_p2(LevelId(0), LevelId(1), 10.0)
            .unwrap()
            .is_infinite());
        assert!(hrm
            .balance_point(LevelId(0), LevelId(1), 10.0)
            .unwrap()
            .is_infinite());
        // Three-level hierarchy: cross bandwidth across non-adjacent levels is the
        // bottleneck of the path.
        levels.push(MemoryLevel {
            name: "Disk".into(),
            capacity: ByteSize::from_gib(1024.0),
            bandwidth: Bandwidth::from_gb_per_sec(3.0),
            peak_compute: ComputeRate::ZERO,
        });
        let hrm3 = HierarchicalRoofline::new(
            levels,
            vec![
                Bandwidth::from_gb_per_sec(32.0),
                Bandwidth::from_gb_per_sec(3.0),
            ],
        );
        let path = hrm3.cross_bandwidth(LevelId(2), LevelId(0)).unwrap();
        assert!((path.as_gb_per_sec() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cross-level bandwidth")]
    fn new_rejects_mismatched_cross_bandwidths() {
        let level = MemoryLevel {
            name: "GPU".into(),
            capacity: ByteSize::from_gib(16.0),
            bandwidth: Bandwidth::from_gb_per_sec(300.0),
            peak_compute: ComputeRate::from_tflops_per_sec(65.0),
        };
        HierarchicalRoofline::new(vec![level], vec![Bandwidth::from_gb_per_sec(16.0)]);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(HrmError::UnknownLevel(LevelId(3))
            .to_string()
            .contains("L3"));
        assert!(HrmError::SameLevel(LevelId(0))
            .to_string()
            .contains("distinct"));
    }
}
