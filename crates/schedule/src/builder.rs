//! Decode-stage pipeline schedules as task graphs (Fig. 6 and Algorithm 1 of the
//! paper).
//!
//! Each builder turns a policy + workload into a [`TaskGraph`] over the four lanes
//! of the discrete-event simulator, with task durations taken from the HRM cost
//! model. The schedules differ only in *ordering and granularity* — which is exactly
//! the paper's point: CGOPipe's paged-weight interleaving and two-ahead pre-attention
//! remove the bubbles the baseline orderings leave on the GPU and PCIe lanes.

use moe_hardware::Seconds;
use moe_memory::pages::split_into_pages;
use moe_policy::{CostModel, Policy, WorkloadShape};
use moe_sim::{Lane, SimError, TaskGraph, TaskId, TaskKind};
use serde::{Deserialize, Serialize};

/// The pipeline schedules compared in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// MoE-Lightning's CGOPipe: CPU attention, paged weights interleaved with hidden
    /// uploads, pre-attention launched two micro-batches ahead (Algorithm 1).
    CgoPipe,
    /// FastDecode-style overlap (S2): CPU attention overlapped with GPU compute, but
    /// un-paged whole-layer weight transfers issued at the start of each layer.
    FastDecodeOverlap,
    /// FlexGen(c)-style (S3): CPU attention, un-paged weight transfer issued after a
    /// layer's hidden uploads, blocking the next layer.
    FlexGenCpuAttention,
    /// FlexGen-style (S4): GPU attention with per-micro-batch KV-cache prefetch over
    /// PCIe and un-paged weight transfers.
    FlexGenGpuAttention,
    /// DeepSpeed ZeRO-Inference-style layer streaming: one (micro-)batch, GPU
    /// attention, KV on GPU, whole-layer weight streaming.
    LayerStreaming,
}

impl ScheduleKind {
    /// All schedule kinds in the order shown in Fig. 6 (plus layer streaming).
    pub fn all() -> [ScheduleKind; 5] {
        [
            ScheduleKind::CgoPipe,
            ScheduleKind::FastDecodeOverlap,
            ScheduleKind::FlexGenCpuAttention,
            ScheduleKind::FlexGenGpuAttention,
            ScheduleKind::LayerStreaming,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::CgoPipe => "CGOPipe (MoE-Lightning)",
            ScheduleKind::FastDecodeOverlap => "S2 (FastDecode-style)",
            ScheduleKind::FlexGenCpuAttention => "S3 (FlexGen(c))",
            ScheduleKind::FlexGenGpuAttention => "S4 (FlexGen)",
            ScheduleKind::LayerStreaming => "Layer streaming (DeepSpeed)",
        }
    }

    /// Whether the schedule runs attention on the CPU.
    pub fn uses_cpu_attention(&self) -> bool {
        matches!(
            self,
            ScheduleKind::CgoPipe
                | ScheduleKind::FastDecodeOverlap
                | ScheduleKind::FlexGenCpuAttention
        )
    }
}

/// Builds decode-step task graphs for a (model, node, policy, workload) combination.
#[derive(Debug, Clone)]
pub struct DecodeScheduleBuilder<'a> {
    cost: &'a CostModel,
    policy: Policy,
    workload: WorkloadShape,
    num_layers: u32,
    /// Decode tokens (= active sequences) per micro-batch. Defaults to the uniform
    /// split the policy implies (`μ` per micro-batch, remainder in the last); the
    /// request-level serving loop overrides it with the actual per-micro-batch
    /// occupancy so schedule bubbles reflect real imbalance.
    ub_tokens: Vec<u64>,
    /// Mean decode context per micro-batch (tokens of KV each active sequence
    /// reads per step). `None` falls back to the workload's uniform
    /// `avg_decode_context()`; the serving loop passes per-micro-batch means so
    /// attention load reflects the batcher's actual token balance.
    ub_ctx: Option<Vec<u64>>,
}

impl<'a> DecodeScheduleBuilder<'a> {
    /// Creates a builder. The policy and workload are copied; micro-batch token
    /// counts default to the policy's uniform split.
    pub fn new(cost: &'a CostModel, policy: Policy, workload: WorkloadShape) -> Self {
        let num_layers = cost.model().num_layers;
        let mu = policy.micro_batch_size;
        let n_ub = policy.num_micro_batches();
        let ub_tokens = (0..n_ub)
            .map(|j| {
                if j + 1 == n_ub {
                    policy.batch_size - mu * (n_ub - 1)
                } else {
                    mu
                }
            })
            .collect();
        DecodeScheduleBuilder {
            cost,
            policy,
            workload,
            num_layers,
            ub_tokens,
            ub_ctx: None,
        }
    }

    /// Restricts the graph to the first `layers` layers (useful for the Fig. 6
    /// single-/few-layer visualization).
    pub fn with_layers(mut self, layers: u32) -> Self {
        self.num_layers = layers.min(self.cost.model().num_layers).max(1);
        self
    }

    /// Overrides the per-micro-batch token counts with heterogeneous occupancies
    /// (one entry per micro-batch, each the number of active sequences).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains a zero entry — an empty micro-batch
    /// has no tasks and would silently skew the pipeline stagger.
    pub fn with_micro_batch_tokens(mut self, tokens: &[u64]) -> Self {
        assert!(!tokens.is_empty(), "need at least one micro-batch");
        assert!(
            tokens.iter().all(|&t| t > 0),
            "micro-batch token counts must be positive"
        );
        self.ub_tokens = tokens.to_vec();
        self
    }

    /// Overrides the mean decode context per micro-batch (call after
    /// [`Self::with_micro_batch_tokens`]): attention and KV-transfer tasks of
    /// micro-batch `j` are costed at `contexts[j]` instead of the workload's
    /// uniform average, so imbalanced token assignments produce straggler
    /// micro-batches in the simulated pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` does not hold exactly one positive entry per
    /// micro-batch.
    pub fn with_micro_batch_contexts(mut self, contexts: &[u64]) -> Self {
        assert_eq!(
            contexts.len(),
            self.ub_tokens.len(),
            "need one context entry per micro-batch"
        );
        assert!(
            contexts.iter().all(|&c| c > 0),
            "micro-batch contexts must be positive"
        );
        self.ub_ctx = Some(contexts.to_vec());
        self
    }

    /// The policy used by this builder.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The per-micro-batch decode token counts the graphs are built with.
    pub fn micro_batch_tokens_per_batch(&self) -> &[u64] {
        &self.ub_tokens
    }

    fn ctx(&self) -> u64 {
        self.workload.avg_decode_context()
    }

    /// Mean decode context of micro-batch `j` (per-micro-batch override, or the
    /// workload's uniform average).
    fn ctx_of(&self, j: u64) -> u64 {
        self.ub_ctx
            .as_ref()
            .map_or_else(|| self.ctx(), |c| c[j as usize])
    }

    fn num_micro_batches(&self) -> u64 {
        self.ub_tokens.len() as u64
    }

    fn micro_batch_tokens(&self, j: u64) -> u64 {
        self.ub_tokens[j as usize]
    }

    fn total_tokens(&self) -> u64 {
        self.ub_tokens.iter().sum()
    }

    /// Builds the task graph of one decode step under the given schedule.
    ///
    /// # Errors
    ///
    /// Propagates task-graph construction errors (none are expected for valid
    /// policies; they would indicate a bug in the builder).
    pub fn build(&self, kind: ScheduleKind) -> Result<TaskGraph, SimError> {
        match kind {
            ScheduleKind::CgoPipe => {
                self.build_cpu_attention_pipeline(true, WeightOrder::Interleaved)
            }
            ScheduleKind::FastDecodeOverlap => {
                self.build_cpu_attention_pipeline(true, WeightOrder::WholeAtStart)
            }
            ScheduleKind::FlexGenCpuAttention => {
                self.build_cpu_attention_pipeline(false, WeightOrder::WholeAtEnd)
            }
            ScheduleKind::FlexGenGpuAttention => self.build_gpu_attention_pipeline(),
            ScheduleKind::LayerStreaming => self.build_layer_streaming(),
        }
    }

    /// CPU-attention pipelines (CGOPipe, S2, S3). `two_ahead` enables CGOPipe's
    /// pre-attention stagger; `weight_order` selects how the next layer's weights are
    /// placed on the H2D lane.
    fn build_cpu_attention_pipeline(
        &self,
        two_ahead: bool,
        weight_order: WeightOrder,
    ) -> Result<TaskGraph, SimError> {
        let mut g = TaskGraph::new();
        let n_ub = self.num_micro_batches();
        let layers = u64::from(self.num_layers);
        let total = layers * n_ub;
        let streamed = self.cost.streamed_layer_bytes(&self.policy);

        // Per global pipeline step g = layer * n_ub + j.
        let layer_of = |g: u64| g / n_ub;
        let ub_of = |g: u64| g % n_ub;
        let mut hidden: Vec<Option<TaskId>> = vec![None; total as usize];
        let mut post: Vec<Option<TaskId>> = vec![None; total as usize];
        // Last weight-transfer task of each layer (compute of that layer depends on it).
        let mut weights_done: Vec<Option<TaskId>> = vec![None; layers as usize];

        // Prologue: layer 0 weights arrive before the step starts (steady state keeps
        // the H2D lane one layer ahead); model them as an initial transfer.
        if !streamed.is_zero() {
            let t = g.add_task(
                Lane::HostToDevice,
                self.cost.weight_transfer(streamed),
                TaskKind::WeightTransfer,
                "W(0)",
                &[],
            )?;
            weights_done[0] = Some(t);
        }

        // CGOPipe launches pre-attention two micro-batches ahead of the corresponding
        // post-attention (Algorithm 1): the GPU lane order becomes
        // A(0) A(1) C(0) A(2) C(1) A(3) ... which keeps the GPU busy while the CPU
        // attends the in-flight micro-batches. The simpler variants use no stagger.
        let stagger = if two_ahead && n_ub >= 2 { 2u64 } else { 0 };
        // Weight page sizes for interleaved mode.
        let pages = split_into_pages(streamed, n_ub as usize);

        // Closure creating the GPU post-attention task of global step `gidx`.
        let create_post = |g: &mut TaskGraph,
                           gidx: u64,
                           hidden: &[Option<TaskId>],
                           weights_done: &[Option<TaskId>]|
         -> Result<TaskId, SimError> {
            let (i, j) = (layer_of(gidx), ub_of(gidx));
            let tokens = self.micro_batch_tokens(j);
            let mut deps: Vec<TaskId> = Vec::new();
            if let Some(h) = hidden[gidx as usize] {
                deps.push(h);
            }
            if let Some(w) = weights_done[i as usize] {
                deps.push(w);
            }
            g.add_task(
                Lane::GpuCompute,
                if self.policy.ffn_on_gpu {
                    self.cost.post_attention_gpu(tokens)
                } else {
                    self.cost.post_attention_gpu_without_ffn(tokens)
                },
                TaskKind::PostAttention,
                format!("C({i},{j})"),
                &deps,
            )
        };

        for gidx in 0..(total + stagger) {
            // With the stagger, post-attention of step g - 2 is enqueued on the GPU
            // lane *before* pre-attention of step g.
            if stagger > 0 && gidx >= stagger && gidx - stagger < total {
                let target = gidx - stagger;
                let id = create_post(&mut g, target, &hidden, &weights_done)?;
                post[target as usize] = Some(id);
            }
            if gidx >= total {
                continue;
            }
            let (i, j) = (layer_of(gidx), ub_of(gidx));
            let tokens = self.micro_batch_tokens(j);

            // S2-style: whole next-layer weights at the *start* of layer i's H2D traffic.
            if weight_order == WeightOrder::WholeAtStart
                && j == 0
                && i + 1 < layers
                && !streamed.is_zero()
            {
                let t = g.add_task(
                    Lane::HostToDevice,
                    self.cost.weight_transfer(streamed),
                    TaskKind::WeightTransfer,
                    format!("W({})", i + 1),
                    &[],
                )?;
                weights_done[(i + 1) as usize] = Some(t);
            }

            // GPU pre-attention.
            let mut pre_deps: Vec<TaskId> = Vec::new();
            if i > 0 {
                if let Some(p) = post[(gidx - n_ub) as usize] {
                    pre_deps.push(p);
                }
            }
            if let Some(w) = weights_done[i as usize] {
                pre_deps.push(w);
            }
            let pre_id = g.add_task(
                Lane::GpuCompute,
                self.cost.pre_attention_gpu(tokens),
                TaskKind::PreAttention,
                format!("A({i},{j})"),
                &pre_deps,
            )?;

            // QKV offload to the CPU.
            let qkv_id = g.add_task(
                Lane::DeviceToHost,
                self.cost.qkv_offload(tokens),
                TaskKind::QkvOffload,
                format!("QKV({i},{j})"),
                &[pre_id],
            )?;

            // CPU attention, costed at this micro-batch's mean decode context.
            let attn_id = g.add_task(
                Lane::CpuCompute,
                self.cost.attention_cpu(tokens, self.ctx_of(j)),
                TaskKind::Attention,
                format!("B({i},{j})"),
                &[qkv_id],
            )?;

            // Hidden states back to the GPU.
            let hidden_id = g.add_task(
                Lane::HostToDevice,
                self.cost.hidden_upload(tokens),
                TaskKind::HiddenTransfer,
                format!("H({i},{j})"),
                &[attn_id],
            )?;
            hidden[gidx as usize] = Some(hidden_id);

            // Interleaved weight page for the next layer (CGOPipe).
            if weight_order == WeightOrder::Interleaved && i + 1 < layers {
                let page_bytes = pages[j as usize];
                if !page_bytes.is_zero() {
                    let t = g.add_task(
                        Lane::HostToDevice,
                        self.cost.weight_transfer(page_bytes),
                        TaskKind::WeightTransfer,
                        format!("Wp({},{j})", i + 1),
                        &[],
                    )?;
                    weights_done[(i + 1) as usize] = Some(t);
                }
            }

            // S3-style: whole next-layer weights *after* this layer's hidden uploads.
            if weight_order == WeightOrder::WholeAtEnd
                && j + 1 == n_ub
                && i + 1 < layers
                && !streamed.is_zero()
            {
                let t = g.add_task(
                    Lane::HostToDevice,
                    self.cost.weight_transfer(streamed),
                    TaskKind::WeightTransfer,
                    format!("W({})", i + 1),
                    &[],
                )?;
                weights_done[(i + 1) as usize] = Some(t);
            }

            // Without the stagger the post-attention task follows immediately.
            if stagger == 0 {
                let id = create_post(&mut g, gidx, &hidden, &weights_done)?;
                post[gidx as usize] = Some(id);
            }
        }
        Ok(g)
    }

    /// S4: GPU attention with per-micro-batch KV prefetch over PCIe.
    fn build_gpu_attention_pipeline(&self) -> Result<TaskGraph, SimError> {
        let mut g = TaskGraph::new();
        let n_ub = self.num_micro_batches();
        let layers = u64::from(self.num_layers);
        let streamed = self.cost.streamed_layer_bytes(&self.policy);
        let kv_cpu_fraction = 1.0 - self.policy.kv_gpu_ratio;

        let mut weights_done: Vec<Option<TaskId>> = vec![None; layers as usize];
        if !streamed.is_zero() {
            weights_done[0] = Some(g.add_task(
                Lane::HostToDevice,
                self.cost.weight_transfer(streamed),
                TaskKind::WeightTransfer,
                "W(0)",
                &[],
            )?);
        }

        let mut prev_post: Vec<Option<TaskId>> = vec![None; n_ub as usize];
        for i in 0..layers {
            let mut kv_ready: Vec<Option<TaskId>> = vec![None; n_ub as usize];
            // KV prefetch for every micro-batch of this layer, then the (un-paged)
            // weights of the next layer — the S4 H2D ordering of Fig. 6.
            for j in 0..n_ub {
                let tokens = self.micro_batch_tokens(j);
                let duration = self
                    .cost
                    .kv_transfer(tokens, self.ctx_of(j), kv_cpu_fraction);
                if !duration.is_zero() && kv_cpu_fraction > 0.0 {
                    kv_ready[j as usize] = Some(g.add_task(
                        Lane::HostToDevice,
                        duration,
                        TaskKind::KvTransfer,
                        format!("KV({i},{j})"),
                        &[],
                    )?);
                }
            }
            if i + 1 < layers && !streamed.is_zero() {
                weights_done[(i + 1) as usize] = Some(g.add_task(
                    Lane::HostToDevice,
                    self.cost.weight_transfer(streamed),
                    TaskKind::WeightTransfer,
                    format!("W({})", i + 1),
                    &[],
                )?);
            }

            for j in 0..n_ub {
                let tokens = self.micro_batch_tokens(j);
                let mut deps: Vec<TaskId> = Vec::new();
                if let Some(w) = weights_done[i as usize] {
                    deps.push(w);
                }
                if let Some(kv) = kv_ready[j as usize] {
                    deps.push(kv);
                }
                if let Some(p) = prev_post[j as usize] {
                    deps.push(p);
                }
                let duration = self.cost.pre_attention_gpu(tokens)
                    + self.cost.attention_gpu(tokens, self.ctx_of(j))
                    + self.cost.post_attention_gpu(tokens);
                let compute = g.add_task(
                    Lane::GpuCompute,
                    duration,
                    TaskKind::PostAttention,
                    format!("L({i},{j})"),
                    &deps,
                )?;
                // New KV entries written back to the CPU-resident cache.
                if kv_cpu_fraction > 0.0 {
                    let append = self
                        .cost
                        .model()
                        .kv_bytes_per_token_per_layer()
                        .scale(kv_cpu_fraction)
                        * tokens;
                    g.add_task(
                        Lane::DeviceToHost,
                        append / self.cost.node().total_d2h_bandwidth(),
                        TaskKind::QkvOffload,
                        format!("KVout({i},{j})"),
                        &[compute],
                    )?;
                }
                prev_post[j as usize] = Some(compute);
            }
        }
        Ok(g)
    }

    /// DeepSpeed-style layer streaming: a single batch, GPU attention, KV resident on
    /// the GPU, whole-layer weight streaming overlapped with compute.
    fn build_layer_streaming(&self) -> Result<TaskGraph, SimError> {
        let mut g = TaskGraph::new();
        let layers = u64::from(self.num_layers);
        let tokens = self.total_tokens();
        let ctx = self.ctx();
        let streamed = self.cost.streamed_layer_bytes(&self.policy);

        let mut prev_compute: Option<TaskId> = None;
        let mut prev_weights: Option<TaskId> = None;
        for i in 0..layers {
            let weights = if streamed.is_zero() {
                None
            } else {
                Some(g.add_task(
                    Lane::HostToDevice,
                    self.cost.weight_transfer(streamed),
                    TaskKind::WeightTransfer,
                    format!("W({i})"),
                    &[],
                )?)
            };
            let mut deps: Vec<TaskId> = Vec::new();
            if let Some(w) = weights.or(prev_weights) {
                deps.push(w);
            }
            if let Some(c) = prev_compute {
                deps.push(c);
            }
            let duration = self.cost.pre_attention_gpu(tokens)
                + self.cost.attention_gpu(tokens, ctx)
                + self.cost.post_attention_gpu(tokens);
            prev_compute = Some(g.add_task(
                Lane::GpuCompute,
                duration,
                TaskKind::PostAttention,
                format!("L({i})"),
                &deps,
            )?);
            prev_weights = weights;
        }
        Ok(g)
    }

    /// Convenience: simulates one decode step under `kind` and returns the makespan.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn decode_step_makespan(&self, kind: ScheduleKind) -> Result<Seconds, SimError> {
        let graph = self.build(kind)?;
        Ok(moe_sim::simulate(&graph)?.makespan)
    }
}

/// Placement of the next layer's weight transfer on the H2D lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeightOrder {
    /// Pages interleaved with hidden uploads (CGOPipe).
    Interleaved,
    /// One whole-layer transfer issued before the layer's hidden uploads (S2).
    WholeAtStart,
    /// One whole-layer transfer issued after the layer's hidden uploads (S3).
    WholeAtEnd,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_hardware::NodeSpec;
    use moe_model::MoeModelConfig;
    use moe_sim::simulate;

    fn cost() -> CostModel {
        CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b())
    }

    fn builder(cost: &CostModel) -> DecodeScheduleBuilder<'_> {
        DecodeScheduleBuilder::new(
            cost,
            Policy::offload_default(256, 32),
            WorkloadShape::new(77, 128),
        )
        .with_layers(4)
    }

    #[test]
    fn all_schedules_build_and_simulate() {
        let cost = cost();
        let b = builder(&cost);
        for kind in ScheduleKind::all() {
            let graph = b.build(kind).unwrap();
            assert!(!graph.is_empty(), "{} produced no tasks", kind.name());
            let result = simulate(&graph).unwrap();
            assert!(result.makespan.as_secs() > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn cgopipe_beats_all_baseline_schedules() {
        // The headline claim: same policy, same hardware, CGOPipe's ordering gives the
        // shortest decode step.
        let cost = cost();
        let b = builder(&cost);
        let cgo = b.decode_step_makespan(ScheduleKind::CgoPipe).unwrap();
        for kind in [
            ScheduleKind::FastDecodeOverlap,
            ScheduleKind::FlexGenCpuAttention,
            ScheduleKind::FlexGenGpuAttention,
        ] {
            let other = b.decode_step_makespan(kind).unwrap();
            assert!(
                cgo.as_secs() <= other.as_secs() * 1.001,
                "CGOPipe ({cgo}) should not lose to {} ({other})",
                kind.name()
            );
        }
    }

    #[test]
    fn cgopipe_has_fewer_gpu_bubbles_than_unpaged_variants() {
        let cost = cost();
        let b = builder(&cost);
        let bubbles = |kind: ScheduleKind| {
            let r = simulate(&b.build(kind).unwrap()).unwrap();
            r.lane(Lane::GpuCompute).bubble.as_secs() / r.makespan.as_secs()
        };
        let cgo = bubbles(ScheduleKind::CgoPipe);
        let s3 = bubbles(ScheduleKind::FlexGenCpuAttention);
        assert!(cgo <= s3 + 1e-9, "CGOPipe bubble fraction {cgo} vs S3 {s3}");
    }

    #[test]
    fn s4_moves_more_bytes_over_h2d_than_cgopipe() {
        // FlexGen's KV prefetch consumes PCIe bandwidth that CGOPipe leaves for the
        // weights (§4.1).
        let cost = cost();
        let policy = Policy {
            attention_on_gpu: true,
            ..Policy::offload_default(256, 32)
        };
        let w = WorkloadShape::new(512, 64);
        let b_s4 = DecodeScheduleBuilder::new(&cost, policy, w).with_layers(4);
        let b_cgo =
            DecodeScheduleBuilder::new(&cost, Policy::offload_default(256, 32), w).with_layers(4);
        let h2d_busy = |b: &DecodeScheduleBuilder<'_>, kind| {
            let r = simulate(&b.build(kind).unwrap()).unwrap();
            r.lane(Lane::HostToDevice).busy.as_secs()
        };
        assert!(
            h2d_busy(&b_s4, ScheduleKind::FlexGenGpuAttention)
                > h2d_busy(&b_cgo, ScheduleKind::CgoPipe)
        );
    }

    #[test]
    fn layer_streaming_is_weight_transfer_bound() {
        let cost = cost();
        let policy = Policy {
            batch_size: 64,
            micro_batch_size: 64,
            attention_on_gpu: true,
            ffn_on_gpu: true,
            weights_gpu_ratio: 0.0,
            kv_gpu_ratio: 1.0,
        };
        let b =
            DecodeScheduleBuilder::new(&cost, policy, WorkloadShape::new(77, 32)).with_layers(6);
        let graph = b.build(ScheduleKind::LayerStreaming).unwrap();
        let r = simulate(&graph).unwrap();
        let h2d = r.lane(Lane::HostToDevice);
        let gpu = r.lane(Lane::GpuCompute);
        assert!(
            h2d.busy.as_secs() > 5.0 * gpu.busy.as_secs(),
            "weights dominate: {h2d:?} vs {gpu:?}"
        );
        assert!(h2d.utilization > 0.9);
    }

    #[test]
    fn task_counts_scale_with_layers_and_micro_batches() {
        let cost = cost();
        let b2 = builder(&cost).with_layers(2);
        let b4 = builder(&cost).with_layers(4);
        let g2 = b2.build(ScheduleKind::CgoPipe).unwrap();
        let g4 = b4.build(ScheduleKind::CgoPipe).unwrap();
        assert!(g4.len() > g2.len());
        // 5 tasks per (layer, micro-batch) plus weight pages and the prologue.
        let n_ub = b4.policy().num_micro_batches() as usize;
        assert!(g4.len() >= 4 * n_ub * 5);
    }

    #[test]
    fn fully_resident_weights_produce_no_weight_tasks() {
        let cost = CostModel::new(
            NodeSpec::a100_case_study(300.0, 4.0),
            MoeModelConfig::mixtral_8x7b(),
        );
        let policy = Policy {
            weights_gpu_ratio: 1.0,
            ..Policy::offload_default(64, 32)
        };
        let b =
            DecodeScheduleBuilder::new(&cost, policy, WorkloadShape::new(128, 32)).with_layers(3);
        let g = b.build(ScheduleKind::CgoPipe).unwrap();
        assert!(g.tasks().iter().all(|t| t.kind != TaskKind::WeightTransfer));
    }

    #[test]
    fn heterogeneous_micro_batch_tokens_change_the_schedule() {
        let cost = cost();
        let uniform = builder(&cost);
        // Same total tokens, skewed across micro-batches: the imbalance must be
        // visible in the simulated pipeline rather than silently averaged away.
        let skewed_tokens: Vec<u64> = vec![120, 60, 40, 20, 10, 3, 2, 1];
        assert_eq!(skewed_tokens.iter().sum::<u64>(), 256);
        let skewed = builder(&cost).with_micro_batch_tokens(&skewed_tokens);
        assert_eq!(
            skewed.micro_batch_tokens_per_batch(),
            skewed_tokens.as_slice()
        );
        for kind in [ScheduleKind::CgoPipe, ScheduleKind::FlexGenGpuAttention] {
            let t_uniform = uniform.decode_step_makespan(kind).unwrap();
            let t_skewed = skewed.decode_step_makespan(kind).unwrap();
            let rel = (t_skewed.as_secs() - t_uniform.as_secs()).abs() / t_uniform.as_secs();
            assert!(
                rel > 1e-3,
                "{}: occupancy skew must change the makespan: {t_skewed} vs {t_uniform}",
                kind.name()
            );
        }
    }

    #[test]
    fn fewer_micro_batches_than_policy_are_honoured() {
        let cost = cost();
        // A tail round of the serving loop may fill only 3 of the policy's 8
        // micro-batches.
        let b = builder(&cost).with_micro_batch_tokens(&[32, 31, 5]);
        let g = b.build(ScheduleKind::CgoPipe).unwrap();
        let r = simulate(&g).unwrap();
        assert!(r.makespan.as_secs() > 0.0);
        // 5 pipeline tasks per (layer, micro-batch): 4 layers × 3 micro-batches.
        let pipeline_tasks = g
            .tasks()
            .iter()
            .filter(|t| t.kind != TaskKind::WeightTransfer)
            .count();
        assert_eq!(pipeline_tasks, 4 * 3 * 5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_occupancy_micro_batch_panics() {
        let cost = cost();
        let _ = builder(&cost).with_micro_batch_tokens(&[32, 0, 5]);
    }

    #[test]
    fn heterogeneous_micro_batch_contexts_create_stragglers() {
        let cost = cost();
        // Same occupancy everywhere; one micro-batch carries far more KV per
        // sequence. Its CPU attention must lengthen the step relative to the
        // balanced assignment with the same total context.
        let occupancy = [32u64, 32, 32, 32];
        let balanced = builder(&cost)
            .with_micro_batch_tokens(&occupancy)
            .with_micro_batch_contexts(&[141, 141, 141, 141]);
        let skewed = builder(&cost)
            .with_micro_batch_tokens(&occupancy)
            .with_micro_batch_contexts(&[420, 48, 48, 48]);
        for kind in [ScheduleKind::CgoPipe, ScheduleKind::FlexGenCpuAttention] {
            let t_balanced = balanced.decode_step_makespan(kind).unwrap();
            let t_skewed = skewed.decode_step_makespan(kind).unwrap();
            assert!(
                t_skewed > t_balanced,
                "{}: the KV-heavy micro-batch must straggle: {t_skewed} vs {t_balanced}",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "one context entry per micro-batch")]
    fn mismatched_context_count_panics() {
        let cost = cost();
        let _ = builder(&cost)
            .with_micro_batch_tokens(&[32, 32])
            .with_micro_batch_contexts(&[100]);
    }

    #[test]
    fn schedule_kind_metadata() {
        assert_eq!(ScheduleKind::all().len(), 5);
        assert!(ScheduleKind::CgoPipe.uses_cpu_attention());
        assert!(!ScheduleKind::FlexGenGpuAttention.uses_cpu_attention());
        assert!(ScheduleKind::LayerStreaming.name().contains("DeepSpeed"));
    }
}
