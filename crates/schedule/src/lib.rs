//! Pipeline schedules for the decode stage: CGOPipe (Algorithm 1) and the baseline
//! orderings of Fig. 6, expressed as task graphs over the discrete-event simulator.
//!
//! # Examples
//!
//! ```
//! use moe_hardware::NodeSpec;
//! use moe_model::MoeModelConfig;
//! use moe_policy::{CostModel, Policy, WorkloadShape};
//! use moe_schedule::{DecodeScheduleBuilder, ScheduleKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
//! let builder = DecodeScheduleBuilder::new(
//!     &cost,
//!     Policy::offload_default(256, 32),
//!     WorkloadShape::new(77, 128),
//! )
//! .with_layers(2);
//! let cgo = builder.decode_step_makespan(ScheduleKind::CgoPipe)?;
//! let flexgen = builder.decode_step_makespan(ScheduleKind::FlexGenGpuAttention)?;
//! assert!(cgo.as_secs() <= flexgen.as_secs());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;

pub use builder::{DecodeScheduleBuilder, ScheduleKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use moe_hardware::NodeSpec;
    use moe_model::MoeModelConfig;
    use moe_policy::{CostModel, Policy, WorkloadShape};
    use moe_sim::{simulate, Lane};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn every_schedule_completes_for_arbitrary_policies(
            mu in 1u64..96,
            n_ub in 1u64..12,
            prompt in 1u64..1024,
            gen in 1u64..256,
            layers in 1u32..5,
        ) {
            let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
            let policy = Policy::offload_default(mu * n_ub, mu);
            let workload = WorkloadShape::new(prompt, gen);
            let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(layers);
            for kind in ScheduleKind::all() {
                let graph = builder.build(kind).unwrap();
                let result = simulate(&graph).unwrap();
                prop_assert!(result.makespan.as_secs() > 0.0);
                prop_assert_eq!(result.timeline.len(), graph.len());
            }
        }

        #[test]
        fn cgopipe_never_loses_to_unpaged_cpu_attention_schedules(
            mu in 8u64..64,
            n_ub in 2u64..10,
            prompt in 16u64..512,
        ) {
            let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
            let policy = Policy::offload_default(mu * n_ub, mu);
            let workload = WorkloadShape::new(prompt, 64);
            let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(3);
            let cgo = builder.decode_step_makespan(ScheduleKind::CgoPipe).unwrap();
            let s2 = builder.decode_step_makespan(ScheduleKind::FastDecodeOverlap).unwrap();
            let s3 = builder.decode_step_makespan(ScheduleKind::FlexGenCpuAttention).unwrap();
            prop_assert!(cgo.as_secs() <= s2.as_secs() * 1.01);
            prop_assert!(cgo.as_secs() <= s3.as_secs() * 1.01);
        }

        #[test]
        fn makespan_at_least_busiest_lane(
            mu in 4u64..64,
            n_ub in 1u64..8,
            layers in 1u32..4,
        ) {
            let cost = CostModel::new(NodeSpec::l4_single(), MoeModelConfig::mixtral_8x7b());
            let policy = Policy::offload_default(mu * n_ub, mu);
            let workload = WorkloadShape::new(242, 50);
            let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(layers);
            for kind in ScheduleKind::all() {
                let graph = builder.build(kind).unwrap();
                let result = simulate(&graph).unwrap();
                for lane in Lane::all() {
                    prop_assert!(result.lane(lane).busy.as_secs() <= result.makespan.as_secs() + 1e-9);
                }
            }
        }
    }
}
