//! Error types for tensor operations.

use std::fmt;

/// Errors produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes that must agree do not agree.
    ShapeMismatch {
        /// The shape that was required.
        expected: Vec<usize>,
        /// The shape (or length) that was provided.
        got: Vec<usize>,
        /// The operation that detected the mismatch.
        context: &'static str,
    },
    /// A tensor had the wrong number of dimensions.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Provided rank.
        got: usize,
    },
    /// An index exceeded the valid range.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the dimension indexed into.
        len: usize,
    },
    /// An argument was invalid for reasons other than shape (e.g. `k = 0` in top-k).
    InvalidArgument {
        /// Explanation of the violated requirement.
        message: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                got,
                context,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected:?}, got {got:?}"
                )
            }
            TensorError::RankMismatch { expected, got } => {
                write!(
                    f,
                    "rank mismatch: expected {expected}-d tensor, got {got}-d"
                )
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TensorError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let errors = [
            TensorError::ShapeMismatch {
                expected: vec![2, 2],
                got: vec![3],
                context: "test",
            },
            TensorError::RankMismatch {
                expected: 2,
                got: 1,
            },
            TensorError::IndexOutOfBounds { index: 9, len: 3 },
            TensorError::InvalidArgument {
                message: "k must be positive".to_owned(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TensorError>();
    }
}
