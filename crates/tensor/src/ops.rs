//! Dense kernels used by the reference MoE transformer layer.
//!
//! These are straightforward, cache-friendly loops — performance of the *numeric*
//! path is irrelevant to the reproduction (cost enters through the analytical model);
//! correctness is what matters, so every kernel has direct unit tests plus property
//! tests in the crate root.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Matrix multiplication `A[m,k] × B[k,n] → C[m,n]`.
///
/// # Errors
///
/// Returns [`TensorError`] if either input is not 2-D or the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use moe_tensor::{ops, Tensor};
/// # fn main() -> Result<(), moe_tensor::TensorError> {
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(ops::matmul(&a, &b)?.data(), a.data());
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k) = a.as_2d()?;
    let (k2, n) = b.as_2d()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, k],
            got: vec![k2, n],
            context: "ops::matmul inner dimension",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    let out_data = out.data_mut();
    for i in 0..m {
        for p in 0..k {
            let a_ip = a_data[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            let out_row = &mut out_data[i * n..(i + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
    Ok(out)
}

/// Matrix–vector product `A[m,k] × x[k] → y[m]`.
///
/// # Errors
///
/// Returns [`TensorError`] if `a` is not 2-D or dimensions disagree.
pub fn matvec(a: &Tensor, x: &[f32]) -> Result<Vec<f32>, TensorError> {
    let (m, k) = a.as_2d()?;
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: vec![x.len()],
            context: "ops::matvec",
        });
    }
    let data = a.data();
    let mut y = vec![0.0f32; m];
    for i in 0..m {
        let row = &data[i * k..(i + 1) * k];
        y[i] = row.iter().zip(x).map(|(w, v)| w * v).sum();
    }
    Ok(y)
}

/// Numerically stable softmax over a slice, in place.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Row-wise softmax of a 2-D tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if the input is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor, TensorError> {
    let (rows, _cols) = x.as_2d()?;
    let mut out = x.clone();
    for r in 0..rows {
        softmax_inplace(out.row_mut(r)?);
    }
    Ok(out)
}

/// RMSNorm: `x / sqrt(mean(x²) + eps) * gain`, applied per row.
///
/// Mixtral and DBRX use RMS normalization before attention and FFN blocks.
///
/// # Errors
///
/// Returns [`TensorError`] if `x` is not 2-D or the gain length differs from the row
/// width.
pub fn rms_norm(x: &Tensor, gain: &[f32], eps: f32) -> Result<Tensor, TensorError> {
    let (rows, cols) = x.as_2d()?;
    if gain.len() != cols {
        return Err(TensorError::ShapeMismatch {
            expected: vec![cols],
            got: vec![gain.len()],
            context: "ops::rms_norm gain",
        });
    }
    let mut out = x.clone();
    for r in 0..rows {
        let row = out.row_mut(r)?;
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, g) in row.iter_mut().zip(gain) {
            *v = *v * inv * g;
        }
    }
    Ok(out)
}

/// SiLU (swish) activation `x * sigmoid(x)`, the activation of Mixtral's experts.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies SiLU element-wise.
pub fn silu_tensor(x: &Tensor) -> Tensor {
    x.map(silu)
}

/// Returns the indices and values of the `k` largest entries of `scores`, sorted by
/// decreasing value (ties broken by lower index, matching common framework behaviour).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `k` is zero or exceeds the length of
/// `scores`.
pub fn top_k(scores: &[f32], k: usize) -> Result<Vec<(usize, f32)>, TensorError> {
    if k == 0 {
        return Err(TensorError::InvalidArgument {
            message: "top_k requires k >= 1".to_owned(),
        });
    }
    if k > scores.len() {
        return Err(TensorError::InvalidArgument {
            message: format!("top_k requires k <= len, got k={k}, len={}", scores.len()),
        });
    }
    let mut indexed: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    indexed.truncate(k);
    Ok(indexed)
}

/// Dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> Result<f32, TensorError> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            expected: vec![a.len()],
            got: vec![b.len()],
            context: "ops::dot",
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, data).expect("valid tensor literal")
    }

    #[test]
    fn matmul_matches_hand_computed_result() {
        let a = t(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let eye = t(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &eye).unwrap(), a);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[2, 3], vec![0.0; 6]);
        let b = t(&[2, 2], vec![0.0; 4]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul(&a, &Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = t(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matvec(&a, &[1.0, -1.0]).unwrap();
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let x = t(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let s = softmax_rows(&x).unwrap();
        let row = s.row(0).unwrap();
        assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(row[3] > row[2] && row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0, 999.0];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_slice_is_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_inplace(&mut x);
        assert!(x.is_empty());
    }

    #[test]
    fn rms_norm_produces_unit_rms_with_unit_gain() {
        let x = t(&[1, 4], vec![2.0, -2.0, 2.0, -2.0]);
        let out = rms_norm(&x, &[1.0; 4], 1e-6).unwrap();
        let rms: f32 = (out.row(0).unwrap().iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rms_norm_validates_gain_length() {
        let x = t(&[1, 4], vec![1.0; 4]);
        assert!(rms_norm(&x, &[1.0; 3], 1e-6).is_err());
    }

    #[test]
    fn silu_has_expected_fixed_points() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(10.0) > 9.99);
        assert!(silu(-10.0).abs() < 1e-3);
        let t_in = t(&[1, 2], vec![0.0, 10.0]);
        let out = silu_tensor(&t_in);
        assert_eq!(out.data()[0], 0.0);
    }

    #[test]
    fn top_k_returns_sorted_largest_entries() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.2];
        let top = top_k(&scores, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1, "ties broken by lower index");
        assert_eq!(top[1].0, 3);
    }

    #[test]
    fn top_k_validates_k() {
        assert!(top_k(&[1.0, 2.0], 0).is_err());
        assert!(top_k(&[1.0, 2.0], 3).is_err());
        assert_eq!(top_k(&[1.0, 2.0], 2).unwrap().len(), 2);
    }

    #[test]
    fn dot_product_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }
}
