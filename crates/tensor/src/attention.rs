//! Grouped-Query Attention (GQA) kernels.
//!
//! The paper's CGOPipe schedule runs the attention *softmax part* on the CPU against
//! the CPU-resident KV cache (§4.1), exactly the computation implemented here. Both
//! the decode kernel (one query token per sequence) and a prefill kernel (causal,
//! full sequence) are provided so the functional runtime can execute real forward
//! passes.

use crate::error::TensorError;
use crate::ops::softmax_inplace;
use crate::tensor::Tensor;

/// Single-token (decode-stage) grouped-query attention.
///
/// * `query` — `[n_q_heads, head_dim]`, the query projections of one new token.
/// * `k_cache`/`v_cache` — `[n_kv_heads, ctx_len, head_dim]`, the cached keys and
///   values of the `ctx_len` previous tokens (3-D, flattened row-major).
///
/// Query heads are divided evenly across KV heads (`n_q_heads % n_kv_heads == 0`);
/// each group of `n_q_heads / n_kv_heads` query heads attends to the same KV head,
/// which is what makes GQA's operational intensity higher than vanilla multi-head
/// attention (paper §3.3).
///
/// Returns the attention output `[n_q_heads, head_dim]`.
///
/// # Errors
///
/// Returns [`TensorError`] if shapes are inconsistent or head counts don't divide.
pub fn gqa_attention_decode(
    query: &Tensor,
    k_cache: &Tensor,
    v_cache: &Tensor,
) -> Result<Tensor, TensorError> {
    let (n_q_heads, head_dim) = query.as_2d()?;
    let kv_shape = k_cache.shape();
    if kv_shape.len() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            got: kv_shape.len(),
        });
    }
    if v_cache.shape() != kv_shape {
        return Err(TensorError::ShapeMismatch {
            expected: kv_shape.to_vec(),
            got: v_cache.shape().to_vec(),
            context: "gqa_attention_decode value cache",
        });
    }
    let (n_kv_heads, ctx_len, kv_dim) = (kv_shape[0], kv_shape[1], kv_shape[2]);
    if kv_dim != head_dim {
        return Err(TensorError::ShapeMismatch {
            expected: vec![head_dim],
            got: vec![kv_dim],
            context: "gqa_attention_decode head dimension",
        });
    }
    if n_kv_heads == 0 || n_q_heads % n_kv_heads != 0 {
        return Err(TensorError::InvalidArgument {
            message: format!(
                "query heads ({n_q_heads}) must be a positive multiple of kv heads ({n_kv_heads})"
            ),
        });
    }
    if ctx_len == 0 {
        return Err(TensorError::InvalidArgument {
            message: "attention requires at least one cached token".to_owned(),
        });
    }

    let group = n_q_heads / n_kv_heads;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let k_data = k_cache.data();
    let v_data = v_cache.data();
    let q_data = query.data();

    let mut out = Tensor::zeros(&[n_q_heads, head_dim]);
    let out_data = out.data_mut();
    let mut scores = vec![0.0f32; ctx_len];

    for qh in 0..n_q_heads {
        let kvh = qh / group;
        let q_row = &q_data[qh * head_dim..(qh + 1) * head_dim];
        let k_head = &k_data[kvh * ctx_len * head_dim..(kvh + 1) * ctx_len * head_dim];
        let v_head = &v_data[kvh * ctx_len * head_dim..(kvh + 1) * ctx_len * head_dim];

        for (t, score) in scores.iter_mut().enumerate() {
            let k_row = &k_head[t * head_dim..(t + 1) * head_dim];
            *score = q_row.iter().zip(k_row).map(|(a, b)| a * b).sum::<f32>() * scale;
        }
        softmax_inplace(&mut scores);

        let out_row = &mut out_data[qh * head_dim..(qh + 1) * head_dim];
        for (t, &w) in scores.iter().enumerate() {
            let v_row = &v_head[t * head_dim..(t + 1) * head_dim];
            for (o, &v) in out_row.iter_mut().zip(v_row) {
                *o += w * v;
            }
        }
    }
    Ok(out)
}

/// Causal self-attention over a full prompt (prefill stage), single KV head group.
///
/// * `q`, `k`, `v` — `[seq_len, head_dim]` projections for one attention head.
///
/// Position `t` attends to positions `0..=t`. Returns `[seq_len, head_dim]`.
///
/// # Errors
///
/// Returns [`TensorError`] if the three inputs do not share the same 2-D shape.
pub fn causal_attention_prefill(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor, TensorError> {
    let (seq_len, head_dim) = q.as_2d()?;
    if k.shape() != q.shape() || v.shape() != q.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: q.shape().to_vec(),
            got: k.shape().to_vec(),
            context: "causal_attention_prefill",
        });
    }
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut out = Tensor::zeros(&[seq_len, head_dim]);
    let q_data = q.data();
    let k_data = k.data();
    let v_data = v.data();
    let out_data = out.data_mut();
    let mut scores = Vec::with_capacity(seq_len);

    for t in 0..seq_len {
        scores.clear();
        let q_row = &q_data[t * head_dim..(t + 1) * head_dim];
        for s in 0..=t {
            let k_row = &k_data[s * head_dim..(s + 1) * head_dim];
            scores.push(q_row.iter().zip(k_row).map(|(a, b)| a * b).sum::<f32>() * scale);
        }
        softmax_inplace(&mut scores);
        let out_row = &mut out_data[t * head_dim..(t + 1) * head_dim];
        for (s, &w) in scores.iter().enumerate() {
            let v_row = &v_data[s * head_dim..(s + 1) * head_dim];
            for (o, &vv) in out_row.iter_mut().zip(v_row) {
                *o += w * vv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cached_token_returns_its_value() {
        // With one token in the cache the softmax weight is 1 regardless of the query,
        // so the output must equal the cached value vector.
        let q = Tensor::from_vec(&[2, 3], vec![0.3; 6]).unwrap();
        let k = Tensor::from_vec(&[1, 1, 3], vec![1.0, -1.0, 0.5]).unwrap();
        let v = Tensor::from_vec(&[1, 1, 3], vec![7.0, 8.0, 9.0]).unwrap();
        let out = gqa_attention_decode(&q, &k, &v).unwrap();
        assert_eq!(out.row(0).unwrap(), &[7.0, 8.0, 9.0]);
        assert_eq!(out.row(1).unwrap(), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn attention_output_is_convex_combination_of_values() {
        let q = Tensor::randn(&[4, 8], 1.0, 1);
        let k = Tensor::randn(&[2, 5, 8], 1.0, 2);
        let v = Tensor::full(&[2, 5, 8], 3.0);
        // All values identical => any convex combination equals that value.
        let out = gqa_attention_decode(&q, &k, &v).unwrap();
        for x in out.data() {
            assert!((x - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn strong_key_match_dominates_output() {
        // Query aligned with the second cached key: output should be close to the
        // second value row.
        let q = Tensor::from_vec(&[1, 2], vec![10.0, 0.0]).unwrap();
        let k = Tensor::from_vec(&[1, 2, 2], vec![-10.0, 0.0, 10.0, 0.0]).unwrap();
        let v = Tensor::from_vec(&[1, 2, 2], vec![1.0, 1.0, 5.0, -5.0]).unwrap();
        let out = gqa_attention_decode(&q, &k, &v).unwrap();
        let row = out.row(0).unwrap();
        assert!((row[0] - 5.0).abs() < 1e-2);
        assert!((row[1] + 5.0).abs() < 1e-2);
    }

    #[test]
    fn gqa_groups_share_kv_heads() {
        // 4 query heads over 2 kv heads: heads 0,1 use kv head 0; heads 2,3 use kv head 1.
        let q = Tensor::from_vec(&[4, 1], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let k = Tensor::from_vec(&[2, 1, 1], vec![1.0, 1.0]).unwrap();
        let v = Tensor::from_vec(&[2, 1, 1], vec![2.0, 9.0]).unwrap();
        let out = gqa_attention_decode(&q, &k, &v).unwrap();
        assert_eq!(out.data(), &[2.0, 2.0, 9.0, 9.0]);
    }

    #[test]
    fn rejects_inconsistent_shapes() {
        let q = Tensor::zeros(&[4, 8]);
        let k = Tensor::zeros(&[2, 5, 8]);
        let v_bad = Tensor::zeros(&[2, 4, 8]);
        assert!(gqa_attention_decode(&q, &k, &v_bad).is_err());
        let k_bad_dim = Tensor::zeros(&[2, 5, 7]);
        assert!(gqa_attention_decode(&q, &k_bad_dim, &Tensor::zeros(&[2, 5, 7])).is_err());
        let k_bad_heads = Tensor::zeros(&[3, 5, 8]);
        assert!(gqa_attention_decode(&q, &k_bad_heads, &Tensor::zeros(&[3, 5, 8])).is_err());
        let k_2d = Tensor::zeros(&[5, 8]);
        assert!(gqa_attention_decode(&q, &k_2d, &k_2d).is_err());
        let empty_ctx = Tensor::zeros(&[2, 0, 8]);
        assert!(gqa_attention_decode(&q, &empty_ctx, &empty_ctx).is_err());
    }

    #[test]
    fn prefill_first_token_attends_only_to_itself() {
        let q = Tensor::randn(&[3, 4], 1.0, 3);
        let k = Tensor::randn(&[3, 4], 1.0, 4);
        let v = Tensor::randn(&[3, 4], 1.0, 5);
        let out = causal_attention_prefill(&q, &k, &v).unwrap();
        // Row 0 can only see value row 0.
        let expected: Vec<f32> = v.row(0).unwrap().to_vec();
        for (o, e) in out.row(0).unwrap().iter().zip(&expected) {
            assert!((o - e).abs() < 1e-5);
        }
    }

    #[test]
    fn prefill_validates_shapes() {
        let q = Tensor::zeros(&[3, 4]);
        assert!(
            causal_attention_prefill(&q, &Tensor::zeros(&[3, 5]), &Tensor::zeros(&[3, 4])).is_err()
        );
    }

    #[test]
    fn prefill_last_row_matches_decode_kernel() {
        // The last prefill position sees the full context, which is exactly what the
        // decode kernel computes for a single query over the same K/V.
        let seq = 6;
        let dim = 4;
        let q = Tensor::randn(&[seq, dim], 1.0, 10);
        let k = Tensor::randn(&[seq, dim], 1.0, 11);
        let v = Tensor::randn(&[seq, dim], 1.0, 12);
        let prefill = causal_attention_prefill(&q, &k, &v).unwrap();

        let q_last = Tensor::from_vec(&[1, dim], q.row(seq - 1).unwrap().to_vec()).unwrap();
        let k3 = k.reshape(&[1, seq, dim]).unwrap();
        let v3 = v.reshape(&[1, seq, dim]).unwrap();
        let decode = gqa_attention_decode(&q_last, &k3, &v3).unwrap();

        for (a, b) in prefill
            .row(seq - 1)
            .unwrap()
            .iter()
            .zip(decode.row(0).unwrap())
        {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
