//! A minimal dense, row-major, `f32` tensor.
//!
//! The reproduction does not need a full deep-learning framework: the functional
//! offloading runtime only has to execute small MoE layers correctly so that the
//! CGOPipe task graph, paging and dependency logic can be validated end-to-end on
//! real data. A simple owned `Vec<f32>` container with shape metadata is enough and
//! keeps the workspace free of heavyweight dependencies.

use crate::error::TensorError;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A dense, row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use moe_tensor::Tensor;
    /// let t = Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.len(), 6);
    /// assert_eq!(t.shape(), &[2, 3]);
    /// ```
    pub fn zeros(shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the buffer length does not equal the
    /// product of the shape dimensions.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Tensor, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: vec![data.len()],
                context: "Tensor::from_vec",
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor with values drawn from a normal distribution `N(0, std²)`,
    /// deterministically seeded.
    pub fn randn(shape: &[usize], std: f32, seed: u64) -> Tensor {
        let len: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        // Box–Muller free: rand's StandardNormal lives in rand_distr which is not an
        // allowed dependency, so sample a uniform-sum approximation (Irwin–Hall with
        // 12 terms has unit variance and is plenty for weight initialization).
        let uniform = rand::distributions::Uniform::new(0.0f32, 1.0f32);
        let data = (0..len)
            .map(|_| {
                let s: f32 = (0..12).map(|_| uniform.sample(&mut rng)).sum();
                (s - 6.0) * std
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Size of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn dim(&self, dim: usize) -> usize {
        self.shape[dim]
    }

    /// Returns the number of rows and columns of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not 2-D.
    pub fn as_2d(&self) -> Result<(usize, usize), TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                got: self.shape.len(),
            });
        }
        Ok((self.shape[0], self.shape[1]))
    }

    /// Returns a view of row `row` of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not 2-D or the row index is out of bounds.
    pub fn row(&self, row: usize) -> Result<&[f32], TensorError> {
        let (rows, cols) = self.as_2d()?;
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                len: rows,
            });
        }
        Ok(&self.data[row * cols..(row + 1) * cols])
    }

    /// Returns a mutable view of row `row` of a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not 2-D or the row index is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> Result<&mut [f32], TensorError> {
        let (rows, cols) = self.as_2d()?;
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: row,
                len: rows,
            });
        }
        Ok(&mut self.data[row * cols..(row + 1) * cols])
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.to_vec(),
                got: self.shape.clone(),
                context: "Tensor::reshape",
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "Tensor::add", |a, b| a + b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "Tensor::mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }

    /// Applies a function element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Maximum absolute difference between two tensors of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
                context: "Tensor::max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    fn zip_with(
        &self,
        other: &Tensor,
        context: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.clone(),
                got: other.shape.clone(),
                context,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full_have_expected_contents() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[3], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
        assert_eq!(f.ndim(), 1);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(&[2, 2], vec![1.0; 5]).unwrap_err();
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[16], 0.5, 7);
        let b = Tensor::randn(&[16], 0.5, 7);
        let c = Tensor::randn(&[16], 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_has_roughly_zero_mean() {
        let t = Tensor::randn(&[10_000], 1.0, 42);
        let mean = t.sum() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from zero");
    }

    #[test]
    fn row_access_and_mutation() {
        let mut t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        t.row_mut(0).unwrap()[2] = 9.0;
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0, 9.0]);
        assert!(t.row(2).is_err());
        assert!(
            Tensor::zeros(&[3]).row(0).is_err(),
            "row access requires 2-D"
        );
    }

    #[test]
    fn reshape_preserves_data_and_validates_count() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops_respect_shapes() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        assert!(a.add(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![1.0, 2.5, 3.0]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        assert_eq!(a.max_abs_diff(&a).unwrap(), 0.0);
    }

    #[test]
    fn map_applies_function() {
        let a = Tensor::from_vec(&[2], vec![1.0, -2.0]).unwrap();
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
    }
}
