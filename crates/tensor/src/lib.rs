//! Minimal dense tensor library and transformer kernels for the MoE-Lightning
//! reproduction.
//!
//! The functional offloading runtime (`moe-runtime`) executes real forward passes
//! of a tiny Mixture-of-Experts transformer to validate that CGOPipe's task graph,
//! weight paging and dependency tracking are actually executable. This crate provides
//! the numeric substrate: an owned row-major [`Tensor`], dense kernels
//! ([`ops::matmul`], [`ops::softmax_rows`], [`ops::rms_norm`], [`ops::silu`],
//! [`ops::top_k`]) and grouped-query attention
//! ([`attention::gqa_attention_decode`], [`attention::causal_attention_prefill`]).
//!
//! Performance of these kernels is deliberately not a goal — the paper's performance
//! questions are answered by the analytical model and the discrete-event simulator —
//! so the implementations favour clarity and testability.
//!
//! # Examples
//!
//! ```
//! use moe_tensor::ops;
//! # fn main() -> Result<(), moe_tensor::TensorError> {
//! let router_logits = vec![0.1, 2.0, -0.3, 1.5];
//! let experts = ops::top_k(&router_logits, 2)?;
//! assert_eq!(experts[0].0, 1); // expert 1 has the highest score
//! assert_eq!(experts[1].0, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod error;
pub mod ops;
pub mod tensor;

pub use error::TensorError;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            proptest::collection::vec(-4.0f32..4.0, r * c)
                .prop_map(move |data| Tensor::from_vec(&[r, c], data).expect("sized data"))
        })
    }

    proptest! {
        #[test]
        fn matmul_identity_right(m in small_matrix(6)) {
            let (_, cols) = m.as_2d().unwrap();
            let mut eye = Tensor::zeros(&[cols, cols]);
            for i in 0..cols {
                eye.row_mut(i).unwrap()[i] = 1.0;
            }
            let prod = ops::matmul(&m, &eye).unwrap();
            prop_assert!(prod.max_abs_diff(&m).unwrap() < 1e-5);
        }

        #[test]
        fn matmul_distributes_over_addition(
            a in small_matrix(5),
            seed in 0u64..1000,
        ) {
            let (rows, cols) = a.as_2d().unwrap();
            let b = Tensor::randn(&[rows, cols], 1.0, seed);
            let c = Tensor::randn(&[cols, 3], 1.0, seed + 1);
            let lhs = ops::matmul(&a.add(&b).unwrap(), &c).unwrap();
            let rhs = ops::matmul(&a, &c).unwrap().add(&ops::matmul(&b, &c).unwrap()).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }

        #[test]
        fn softmax_rows_are_probability_distributions(m in small_matrix(6)) {
            let s = ops::softmax_rows(&m).unwrap();
            let (rows, _) = s.as_2d().unwrap();
            for r in 0..rows {
                let row = s.row(r).unwrap();
                prop_assert!(row.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
                prop_assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            }
        }

        #[test]
        fn softmax_is_shift_invariant(v in proptest::collection::vec(-10.0f32..10.0, 1..32), shift in -5.0f32..5.0) {
            let mut a = v.clone();
            let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
            ops::softmax_inplace(&mut a);
            ops::softmax_inplace(&mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn top_k_values_are_maximal(v in proptest::collection::vec(-10.0f32..10.0, 1..64), k in 1usize..8) {
            let k = k.min(v.len());
            let top = ops::top_k(&v, k).unwrap();
            prop_assert_eq!(top.len(), k);
            let min_selected = top.iter().map(|t| t.1).fold(f32::INFINITY, f32::min);
            let selected: std::collections::HashSet<usize> = top.iter().map(|t| t.0).collect();
            for (i, &x) in v.iter().enumerate() {
                if !selected.contains(&i) {
                    prop_assert!(x <= min_selected + 1e-6);
                }
            }
        }

        #[test]
        fn rms_norm_output_has_unit_rms(
            v in proptest::collection::vec(0.1f32..5.0, 4..32),
        ) {
            let n = v.len();
            let x = Tensor::from_vec(&[1, n], v).unwrap();
            let out = ops::rms_norm(&x, &vec![1.0; n], 1e-8).unwrap();
            let rms = (out.row(0).unwrap().iter().map(|a| a * a).sum::<f32>() / n as f32).sqrt();
            prop_assert!((rms - 1.0).abs() < 1e-2);
        }

        #[test]
        fn attention_rows_stay_within_value_range(
            seed in 0u64..500,
            ctx in 1usize..12,
            heads in 1usize..4,
        ) {
            let head_dim = 4;
            let q = Tensor::randn(&[heads * 2, head_dim], 1.0, seed);
            let k = Tensor::randn(&[heads, ctx, head_dim], 1.0, seed + 1);
            let v = Tensor::randn(&[heads, ctx, head_dim], 1.0, seed + 2);
            let out = attention::gqa_attention_decode(&q, &k, &v).unwrap();
            let vmin = v.data().iter().copied().fold(f32::INFINITY, f32::min);
            let vmax = v.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for &x in out.data() {
                prop_assert!(x >= vmin - 1e-4 && x <= vmax + 1e-4,
                    "convex combination must stay within value extremes");
            }
        }
    }
}
