//! Offline shim for `proptest`: a deterministic property-testing harness covering
//! the API subset the workspace uses — the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), range/tuple strategies, `prop_map`,
//! `prop_flat_map`, `proptest::collection::vec`, `any::<T>()` and the
//! `prop_assert*` macros. Unlike the real crate it does no shrinking: a failing
//! case panics with the case index so it can be replayed (generation is
//! deterministic per test).

use rand::{Rng, RngCore, SeedableRng};

/// Test-runner configuration (`proptest::test_runner::ProptestConfig` subset).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps offline CI fast while still
            // exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// The generator handed to strategies (a seeded [`rand::rngs::StdRng`]).
pub type TestRng = rand::rngs::StdRng;

/// A value generator. The shim's strategies produce values directly (no shrink
/// trees).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy (`proptest::arbitrary::Arbitrary` subset).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> ArbitraryStrategy<Self>;
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> ArbitraryStrategy<bool> {
        ArbitraryStrategy {
            gen: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> ArbitraryStrategy<$t> {
                ArbitraryStrategy { gen: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy of `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    T::arbitrary()
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec()`](crate::collection::vec): a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Re-exports matching `proptest::prelude::*` for the shimmed subset.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
    };
}

/// Builds the deterministic generator for a test, seeded from its qualified name
/// so failures are reproducible run to run.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// Asserts a condition inside a property (panics with the failing case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` macro: wraps property functions into `#[test]` runners.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            // The `#[test]` attribute is written by the caller (as in real proptest).
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let run = |rng: &mut $crate::TestRng| {
                        $( let $arg = $crate::Strategy::generate(&($strat), rng); )+
                        $body
                    };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| run(&mut rng)));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic; re-run reproduces it)",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (1u64..10, 0.0f64..1.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_honours_size_range() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            collection::vec(0.0f32..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..50 {
            let (r, c, v) = s.generate(&mut rng);
            assert_eq!(v.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
