//! Offline shim for `rand` 0.8: implements exactly the API subset the workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`, and
//! `distributions::{Distribution, Uniform}`) on top of an xoshiro256++ generator
//! seeded through SplitMix64. Deterministic per seed, statistically solid for the
//! synthetic-workload sampling and weight initialization done here.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// The standard generator: xoshiro256++ (the shim stand-in for rand's ChaCha12).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            Self::splitmix(&mut sm),
            Self::splitmix(&mut sm),
            Self::splitmix(&mut sm),
            Self::splitmix(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Rejection-free (modulo-bias-negligible for the small ranges used here) integer
/// draw in `[0, span)`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 128-bit multiply-shift keeps the distribution uniform without rejection.
    let wide = u128::from(rng.next_u64()) * u128::from(span);
    (wide >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (uniform_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (uniform_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Generator implementations (`rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// Distributions (`rand::distributions`) — the `Uniform` subset.
pub mod distributions {
    use super::RngCore;

    /// Types that can produce samples from a generator.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new called with empty range");
            Uniform { low, high }
        }
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    self.low + (super::uniform_f64(rng) as $t) * (self.high - self.low)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    let span = (self.high as i128 - self.low as i128) as u64;
                    (self.low as i128 + super::uniform_u64(rng, span) as i128) as $t
                }
            }
        )*};
    }

    uniform_int!(u32, u64, usize, i32, i64);
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = Uniform::new(0.0f64, 1.0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| u.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
