//! Offline shim for `criterion`: supports `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter`/`iter_batched` and `BatchSize`.
//! Each benchmark runs a short calibrated timing loop and prints a one-line
//! median estimate — enough to compare hot paths offline without the real
//! statistical machinery.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration input-size hint (accepted for API compatibility; the shim uses
/// one batch per measurement regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in the real crate.
    SmallInput,
    /// Large inputs: one iteration per batch in the real crate.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine`, repeating it enough times to get a stable estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample takes
        // ≥ ~1 ms, then record a handful of samples.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.samples.push(elapsed / iters as u32);
                break;
            }
            iters *= 4;
        }
        for _ in 0..4 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..5 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a driver.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Runs one named benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        println!("bench {id:<48} median {:?}", bencher.median());
        self
    }
}

/// Declares a benchmark group (shim: a function running each benchmark in turn).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; the shim ignores them.
            $( $group(); )+
        }
    };
}
