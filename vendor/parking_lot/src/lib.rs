//! Offline shim for `parking_lot`: the `Mutex`/`Condvar` subset the workspace uses,
//! implemented over `std::sync` with parking_lot's poison-free API (`lock()`
//! returns the guard directly; a poisoned std mutex is recovered transparently,
//! matching parking_lot's behaviour of not propagating panics as poison).

use std::ops::{Deref, DerefMut};
use std::sync as std_sync;

/// A mutual-exclusion primitive (poison-free facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std_sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std_sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std_sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std_sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std_sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std_sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard not already waiting");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std_sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_mutates_and_releases() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*shared;
        *lock.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }
}
