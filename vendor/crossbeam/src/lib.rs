//! Offline shim for `crossbeam`: only the `channel::{unbounded, Sender, Receiver}`
//! subset the workspace uses, implemented over `std::sync::mpsc`.

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: `Debug` without requiring `T: Debug`, so handles to
    // non-Debug payloads (e.g. boxed closures) can still be `expect`ed.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the channel is disconnected.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is disconnected and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_reports_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx2, rx2) = unbounded::<u8>();
            drop(tx2);
            assert_eq!(rx2.recv(), Err(RecvError));
        }
    }
}
