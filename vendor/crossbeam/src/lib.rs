//! Offline shim for `crossbeam`: only the subset the workspace uses — the
//! `channel::{unbounded, Sender, Receiver}` API implemented over
//! `std::sync::mpsc`, and `thread::scope` for borrowing scoped workers
//! implemented over `std::thread::scope`.

/// Scoped threads (`crossbeam::thread` subset).
///
/// Mirrors `crossbeam::thread::scope` closely enough for the workspace: the
/// closure receives a [`Scope`](thread::Scope) whose
/// [`spawn`](thread::Scope::spawn) may borrow from the
/// enclosing stack frame, and every spawned thread is joined before `scope`
/// returns. One divergence from the real crate: `spawn` takes a plain
/// `FnOnce()` (the real crate passes `&Scope` back into the closure for
/// nested spawns, which nothing here needs).
pub mod thread {
    /// Handle to a scope in which borrowing threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to one spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow non-`'static` data from the
        /// enclosing frame; it is joined (at the latest) when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; unjoined threads are
    /// joined automatically before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (kept for crossbeam API compatibility): panics in
    /// unjoined child threads propagate as a panic here instead.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::thread::scope(|s| Ok(f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .sum()
            })
            .expect("scope never errors");
            assert_eq!(total, 10);
        }

        #[test]
        fn scoped_threads_can_mutate_disjoint_chunks() {
            let mut data = vec![0u64; 8];
            super::scope(|s| {
                let mut handles = Vec::new();
                for (i, chunk) in data.chunks_mut(4).enumerate() {
                    handles.push(s.spawn(move || {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            *slot = (i * 4 + j) as u64;
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("worker panicked");
                }
            })
            .expect("scope never errors");
            assert_eq!(data, (0..8).collect::<Vec<u64>>());
        }
    }
}

/// Multi-producer channels (`crossbeam::channel` subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: `Debug` without requiring `T: Debug`, so handles to
    // non-Debug payloads (e.g. boxed closures) can still be `expect`ed.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the channel is disconnected.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is disconnected and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..8 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_reports_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx2, rx2) = unbounded::<u8>();
            drop(tx2);
            assert_eq!(rx2.recv(), Err(RecvError));
        }
    }
}
