//! Offline shim for `serde_derive`: the derive macros accept the same input as the
//! real crate (including `#[serde(...)]` attributes) and expand to nothing. The
//! workspace only uses `#[derive(Serialize, Deserialize)]` as documentation of
//! wire-format intent — nothing takes a `Serialize`/`Deserialize` bound — so empty
//! expansions keep every type compiling without network access to crates.io.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
