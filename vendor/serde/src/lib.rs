//! Offline shim for `serde`: exposes marker traits plus the no-op derive macros so
//! `use serde::{Deserialize, Serialize}` and `#[derive(Serialize, Deserialize)]`
//! compile without network access. The real crate can be swapped back in by
//! pointing the workspace dependency at crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no-op in the offline shim).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no-op in the offline shim).
pub trait Deserialize<'de> {}
