//! MTBench throughput sweep (a small version of the paper's Fig. 7): evaluates every
//! system across generation lengths on the S1 setting, including the request
//! batching step (Algorithm 2) that forms balanced micro-batches from the sampled
//! variable-length prompts.
//!
//! Run with `cargo run --release --example mtbench_throughput`.

use moe_lightning::{EvalSetting, SystemEvaluator, SystemKind};
use moe_workload::{Algorithm2, BatchingConfig, Scheduler, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setting = EvalSetting::S1;
    let spec = WorkloadSpec::mtbench();
    let evaluator = SystemEvaluator::new(setting.node(), setting.model());

    println!("MTBench @ {setting} — generation throughput (tokens/s)\n");
    print!("{:<20}", "system");
    for gen in [32u64, 64, 128, 256] {
        print!("{:>10}", format!("gen={gen}"));
    }
    println!();
    for system in SystemKind::all() {
        print!("{:<20}", system.name());
        for gen in [32u64, 64, 128, 256] {
            match evaluator.evaluate(system, &spec, gen) {
                Ok(r) => print!("{:>10.1}", r.throughput),
                Err(_) => print!("{:>10}", "n/a"),
            }
        }
        println!();
    }

    // Show how MoE-Lightning forms its micro-batches for the best gen=128 policy.
    let result = evaluator.evaluate(SystemKind::MoeLightning, &spec, 128)?;
    let requests = spec.sample_requests(result.policy.batch_size as usize, 128, 42);
    let batches = Algorithm2.plan(
        &requests,
        &BatchingConfig {
            num_micro_batches: result.policy.num_micro_batches() as usize,
            max_requests_per_micro_batch: result.policy.micro_batch_size as usize,
            max_scheduled_requests: result.policy.batch_size as usize,
            cache_tokens_per_micro_batch: u64::MAX,
        },
    );
    let (min, max) = batches.prompt_token_spread();
    println!(
        "\nAlgorithm 2 packed {} requests into {} micro-batches (prompt tokens per micro-batch: {}..{})",
        batches.scheduled_requests(),
        batches.micro_batches.len(),
        min,
        max
    );
    Ok(())
}
