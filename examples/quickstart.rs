//! Quickstart: search an offloading policy for Mixtral 8x7B on a single 16 GB T4
//! (the paper's S1 setting), estimate the end-to-end generation throughput of
//! MoE-Lightning against the FlexGen and DeepSpeed baselines, then serve a small
//! request queue through the `ServeSpec` serving API.
//!
//! Run with `cargo run --release --example quickstart`.

use moe_lightning::{EvalSetting, ServeSpec, ServingMode, SystemEvaluator, SystemKind};
use moe_workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setting = EvalSetting::S1;
    let workload = WorkloadSpec::mtbench();
    let gen_len = 128;

    println!(
        "Setting {setting}: {} on {}",
        setting.model().name,
        setting.node().describe()
    );
    println!(
        "Model weights: {} — GPU memory: {} (offloading required)\n",
        setting.model().total_weight_bytes(),
        setting.node().total_gpu_memory()
    );

    let evaluator = SystemEvaluator::new(setting.node(), setting.model());
    for system in SystemKind::all() {
        let result = evaluator.evaluate(system, &workload, gen_len)?;
        println!(
            "{:<18} {:>8.1} tokens/s   (policy: {})",
            result.system.name(),
            result.throughput,
            result.policy
        );
    }

    println!(
        "\nMoE-Lightning's CGOPipe schedule plus the HRM-searched policy should come out on top."
    );

    // Serve an actual (small) request queue through the request-level loop:
    // variable-length prompts, continuous batching, Algorithm 2 scheduling.
    let report = evaluator.run(
        &ServeSpec::new(SystemKind::MoeLightning, workload)
            .with_count(64)
            .with_gen_len(gen_len)
            .with_mode(ServingMode::Continuous),
    )?;
    println!(
        "\nServed {} MTBench requests continuously with the '{}' scheduler: \
         {:.1} tokens/s, TTFT p50 {:.2}s, {} admission waves",
        report.served_requests(),
        report.scheduler,
        report.generation_throughput(),
        report.ttft().p50.as_secs(),
        report.rounds.len(),
    );
    Ok(())
}
