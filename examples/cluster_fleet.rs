//! Routed-fleet quickstart: serve one online MTBench stream on a heterogeneous
//! T4 + L4 cluster and compare the built-in routers on tail latency and SLO
//! goodput.
//!
//! The fleet-wide arrival stream is sampled once (Poisson at roughly the
//! fleet's joint service rate), each replica runs a capacity-bound policy so
//! admission control genuinely queues, and every `Router` sees the same
//! scenario. Run with:
//!
//! ```sh
//! cargo run --release --example cluster_fleet
//! ```
//!
//! Set `CLUSTER_QUEUE_LEN` (default 240) to shrink the queue for smoke runs.

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterSpec, EvalSetting, NodeSpec, Policy, ReplicaSpec,
    Seconds, ServingMode, SloSpec, SystemKind,
};
use moe_workload::{ArrivalProcess, WorkloadSpec};

fn queue_len() -> usize {
    std::env::var("CLUSTER_QUEUE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(240)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadSpec::mtbench();
    let count = queue_len();
    // 64 concurrent requests per replica: small enough that routing, not raw
    // capacity, decides who queues.
    let policy = Policy::offload_default(64, 16);
    let slo = SloSpec {
        ttft: Seconds::from_secs(60.0),
        per_token: Seconds::from_secs(5.0),
    };
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());

    println!(
        "Mixed fleet: 1x T4 + 1x L4 serving {} ({count} requests, Poisson arrivals)\n",
        evaluator.model().name
    );
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "router", "tokens/s", "ttft_p50 s", "ttft_p99 s", "slo %", "goodput"
    );
    for router in builtin_routers() {
        let scenario = ClusterSpec::new(SystemKind::MoeLightning, workload.clone())
            .with_replica(ReplicaSpec::new(NodeSpec::t4_single()).with_policy(policy))
            .with_replica(ReplicaSpec::new(NodeSpec::l4_single()).with_policy(policy))
            .with_count(count)
            .with_gen_len(64)
            .with_seed(29)
            .with_mode(ServingMode::Continuous)
            // ~The joint T4+L4 service rate under this policy: the regime
            // where load-blind routing overloads the slower T4.
            .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 0.29 })
            .with_router(router)
            .with_slo(slo);
        let report = evaluator.run(&scenario)?;
        let ttft = report.ttft();
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>12.1} {:>8.1} {:>10.1}",
            report.router,
            report.fleet_throughput(),
            ttft.p50.as_secs(),
            ttft.p99.as_secs(),
            report.slo_attainment_pct(&slo),
            report.goodput(&slo),
        );
    }
    println!(
        "\nLoad-aware routing (least-tokens, kv-aware) sends more work to the faster\n\
         L4 and keeps the tail flat; round-robin overloads the T4 and its p99 TTFT\n\
         grows with queue depth."
    );
    Ok(())
}
