//! Fleet dynamics demo: ride out a mid-run replica failure with and without
//! an autoscaler.
//!
//! Runs the pinned seed-11 MTBench scenario (4× T4, capacity-bound policy,
//! Poisson at the fleet's service rate) three ways — no churn, one failure on
//! a static fleet, the same failure with an `SloAttainmentScaler` allowed to
//! grow the fleet back — and reports SLO goodput plus the availability
//! section (rejections, re-routes, replica-seconds lost). Run with:
//!
//! ```sh
//! cargo run --release --example fleet_dynamics
//! ```
//!
//! Set `FLEET_QUEUE_LEN` (default 600) to shrink the queue for smoke runs.

use moe_bench::fleet::FleetScenario;
use moe_lightning::{ClusterEvaluator, ClusterReport, ClusterSpec, EvalSetting};

fn queue_len() -> usize {
    std::env::var("FLEET_QUEUE_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = FleetScenario::pinned(queue_len())?;
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());
    println!(
        "Pinned MTBench fleet: 4x T4, {} requests, Poisson at {:.3} req/s/replica",
        scenario.count, scenario.per_replica_rate
    );
    println!(
        "SLO: ttft <= {:.1}s, per-token <= {:.2}s; failure kills r1 at t={:.0}s; \
         provisioning takes {:.0}s\n",
        scenario.slo.ttft.as_secs(),
        scenario.slo.per_token.as_secs(),
        scenario.fail_time.as_secs(),
        scenario.provisioning_delay.as_secs()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>10} {:>9} {:>9} {:>10}",
        "scenario",
        "tokens/s",
        "goodput",
        "slo %",
        "ttft_p99",
        "rerouted",
        "rejected",
        "repl-s lost"
    );
    let mut baseline_goodput = None;
    for (label, spec) in [
        ("no churn", scenario.base_spec()),
        ("failure, static", scenario.static_failure_spec()),
        ("failure, autoscaled", scenario.autoscaled_failure_spec()),
    ] {
        let report = run_row(&evaluator, label, &spec, &scenario)?;
        let goodput = report.goodput(&scenario.slo);
        match baseline_goodput {
            None => baseline_goodput = Some(goodput),
            Some(base) if base > 0.0 => {
                println!(
                    "  -> {:.1}% of the no-churn goodput",
                    100.0 * goodput / base
                );
            }
            _ => {}
        }
    }
    println!(
        "\nThe static fleet rides out the rest of the run one replica short and its\n\
         backlog (and TTFT tail) grows without bound; the autoscaler spots queued\n\
         requests already past the TTFT deadline (and, later, SLO misses in its\n\
         completion window), provisions replacements, and recovers most of the\n\
         lost goodput."
    );
    Ok(())
}

fn run_row(
    evaluator: &ClusterEvaluator,
    label: &str,
    spec: &ClusterSpec,
    scenario: &FleetScenario,
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let report = evaluator.run(spec)?;
    let a = &report.availability;
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>8.1} {:>10.1} {:>9} {:>9} {:>10.0}",
        label,
        report.fleet_throughput(),
        report.goodput(&scenario.slo),
        report.slo_attainment_pct(&scenario.slo),
        report.ttft().p99.as_secs(),
        a.rerouted.len(),
        a.rejected.len(),
        a.replica_seconds_lost.as_secs(),
    );
    Ok(report)
}
