//! Policy exploration (paper §6.3 / Fig. 10): how the optimal offloading policy for
//! Mixtral 8x7B on a 2×A100-80G node changes as the CPU-GPU interconnect bandwidth
//! and the CPU capabilities are scaled.
//!
//! Run with `cargo run --release --example policy_explorer`.

use moe_hardware::NodeSpec;
use moe_lightning::MoeModelConfig;
use moe_policy::{PolicyOptimizer, SearchSpace, WorkloadShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadShape::new(512, 32);
    println!("Best policy for Mixtral 8x7B on 2xA100-80G (prompt 512, gen 32)\n");
    println!(
        "{:>12} {:>10} {:>16} {:>12} {:>10} {:>10}",
        "link GB/s", "CPU scale", "weights on CPU", "KV on CPU", "attn", "tokens/s"
    );
    for link in [100.0, 300.0, 500.0] {
        for cpu_scale in [1.0, 4.0, 10.0] {
            let node = NodeSpec::a100_case_study(link, cpu_scale);
            let optimizer = PolicyOptimizer::new(node, MoeModelConfig::mixtral_8x7b())
                .with_search_space(SearchSpace::coarse());
            let result = optimizer.search(&workload)?;
            let p = result.policy;
            println!(
                "{:>12.0} {:>10.0} {:>16.2} {:>12.2} {:>10} {:>10.0}",
                link,
                cpu_scale,
                1.0 - p.weights_gpu_ratio,
                if p.attention_on_gpu {
                    1.0 - p.kv_gpu_ratio
                } else {
                    1.0
                },
                if p.attention_on_gpu { "GPU" } else { "CPU" },
                result.throughput
            );
        }
    }
    Ok(())
}
