//! Functional end-to-end demo: generate tokens from a tiny Mixture-of-Experts model
//! through the multi-threaded CGOPipe-style offloading runtime (paged, double-
//! buffered weight prefetch; CPU attention; GPU projections/experts) and verify the
//! output against the sequential reference forward pass.
//!
//! Run with `cargo run --release --example tiny_moe_generation`.

use moe_lightning::{EngineConfig, MoeModelConfig, PipelinedMoeEngine};
use moe_model::ReferenceMoeModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MoeModelConfig::tiny();
    let model = ReferenceMoeModel::random(&cfg, 2024)?;
    let reference = model.clone();

    let engine = PipelinedMoeEngine::new(
        model,
        EngineConfig {
            micro_batch_size: 2,
            weight_pages_per_layer: 4,
            ..EngineConfig::default()
        },
    )?;

    let prompts = vec![vec![11u32, 42, 7], vec![3, 1, 4, 1, 5], vec![250, 100]];
    let gen_len = 12;
    let output = engine.generate(&prompts, gen_len)?;

    println!(
        "Pipelined offloading runtime ({} layers, {} experts, top-{}):\n",
        cfg.num_layers, cfg.num_experts, cfg.top_k
    );
    for (i, (prompt, generated)) in prompts.iter().zip(&output.tokens).enumerate() {
        let expected = reference.generate_greedy(prompt, gen_len)?;
        let matches = &expected == generated;
        println!("sequence {i}: prompt {prompt:?}");
        println!("  pipelined : {generated:?}");
        println!("  reference : {expected:?}   (match: {matches})");
        assert!(
            matches,
            "pipelined output must equal the sequential reference"
        );
    }
    println!("\npipeline statistics:");
    println!("  jobs executed      : {}", output.jobs_executed);
    println!("  host->device bytes : {}", output.h2d_bytes);
    println!("  device->host bytes : {}", output.d2h_bytes);
    println!("  peak simulated GPU : {}", output.gpu_peak);
    Ok(())
}
