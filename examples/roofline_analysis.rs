//! Hierarchical-Roofline analysis (paper §3.3) for any of the evaluated models and
//! GPUs: prints the turning points P1/P2, the balance point and where the GQA
//! attention and MoE FFN kernels land — the reasoning behind running attention on
//! the CPU and the FFN on the GPU.
//!
//! Run with `cargo run --release --example roofline_analysis`.

use moe_hardware::NodeSpec;
use moe_hrm::HierarchicalRoofline;
use moe_lightning::MoeModelConfig;
use moe_model::LayerOps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (node, label) in [
        (NodeSpec::t4_single(), "T4 (S1)"),
        (NodeSpec::l4_single(), "L4 (S2)"),
    ] {
        let hrm = HierarchicalRoofline::from_node(&node);
        let ops = LayerOps::new(MoeModelConfig::mixtral_8x7b());

        let attention = ops.attention_core_decode(64, 512);
        let ffn_small = ops.moe_ffn(16);
        let ffn_large = ops.moe_ffn(256);
        let p1 = hrm.turning_point_p1(hrm.gpu(), hrm.cpu())?;
        let p2 = hrm.turning_point_p2(hrm.gpu(), hrm.cpu(), ffn_large.operational_intensity())?;

        println!("== {label} ==");
        println!("  P1 (don't offload below this intensity): {p1:8.1} FLOPs/byte");
        println!("  P2 (link-bound below this intensity):    {p2:8.1} FLOPs/byte");
        println!(
            "  GQA attention (ctx 512, f16 KV):          {:8.1} FLOPs/byte  -> run on CPU",
            attention.operational_intensity()
        );
        println!(
            "  MoE FFN at mu=16:                         {:8.1} FLOPs/byte",
            ffn_small.operational_intensity()
        );
        println!(
            "  MoE FFN at mu=256:                        {:8.1} FLOPs/byte  -> batch it onto the GPU",
            ffn_large.operational_intensity()
        );
        println!();
    }
    Ok(())
}
