//! End-to-end tests of the request-level serving core: a variable-length MTBench
//! queue served through Algorithm 2 micro-batches (the ISSUE 1 acceptance tests).

use moe_lightning::{
    EvalSetting, ServeSpec, ServingMode, ServingSession, SystemEvaluator, SystemKind,
};
use moe_workload::{ArrivalProcess, Request, WorkloadSpec};

fn evaluator() -> SystemEvaluator {
    SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model())
}

/// An offline MTBench scenario (all requests at time zero, Algorithm 2).
fn scenario(system: SystemKind, count: usize, gen_len: u64, seed: u64) -> ServeSpec {
    ServeSpec::new(system, WorkloadSpec::mtbench())
        .with_count(count)
        .with_gen_len(gen_len)
        .with_seed(seed)
}

#[test]
fn every_request_is_served_or_accounted_aborted() {
    let eval = evaluator();
    let count = 1500;
    let report = eval
        .run(&scenario(SystemKind::MoeLightning, count, 128, 42))
        .unwrap();

    // (a) no request vanishes: served + aborted ids partition the input queue.
    let mut ids: Vec<u64> = report
        .latencies
        .iter()
        .map(|l| l.request.id)
        .chain(report.aborted.iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..count as u64).collect::<Vec<u64>>());
}

#[test]
fn generated_tokens_equal_sum_over_requests() {
    let eval = evaluator();
    let report = eval
        .run(&scenario(SystemKind::MoeLightning, 800, 64, 23))
        .unwrap();

    // (b) token accounting: totals equal the per-request and per-round sums.
    let per_request: u64 = report.latencies.iter().map(|l| l.request.gen_len).sum();
    let per_round: u64 = report
        .rounds
        .iter()
        .map(|r| r.report.generated_tokens)
        .sum();
    assert_eq!(report.totals.generated_tokens, per_request);
    assert_eq!(report.totals.generated_tokens, per_round);
    assert!(report.totals.generated_tokens > 0);
    let prompt_sum: u64 = report.latencies.iter().map(|l| l.request.input_len).sum();
    assert_eq!(report.totals.prompt_tokens, prompt_sum);
}

#[test]
fn unpadded_moe_lightning_beats_padded_on_the_serving_path() {
    let eval = evaluator();
    let padded = eval
        .run(&scenario(SystemKind::MoeLightningPadded, 1000, 64, 3))
        .unwrap();
    let unpadded = eval
        .run(&scenario(SystemKind::MoeLightning, 1000, 64, 3))
        .unwrap();

    // (c) variable-length batching is the whole point: the unpadded system must
    // win on the request-level path too.
    assert!(
        unpadded.generation_throughput() > padded.generation_throughput(),
        "unpadded {} tok/s must beat padded {} tok/s",
        unpadded.generation_throughput(),
        padded.generation_throughput()
    );
}

#[test]
fn serving_reports_latency_percentiles() {
    let eval = evaluator();
    let report = eval
        .run(&scenario(SystemKind::MoeLightning, 1200, 128, 5))
        .unwrap();
    let ttft = report.ttft();
    let tok = report.per_token();
    assert_eq!(ttft.count, report.served_requests());
    assert!(ttft.p50.as_secs() > 0.0);
    assert!(ttft.p90 >= ttft.p50);
    assert!(ttft.p99 >= ttft.p90);
    assert!(tok.mean.as_secs() > 0.0);
    // Completion is never earlier than the first token.
    for l in &report.latencies {
        assert!(l.completion_time >= l.ttft || l.request.gen_len == 0);
    }
}

#[test]
fn micro_batch_imbalance_shows_up_in_round_reports() {
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let report = eval
        .run(&scenario(SystemKind::MoeLightning, 2000, 64, 19))
        .unwrap();
    for round in &report.rounds {
        let (min, max) = round.prompt_token_spread;
        assert!(max >= min);
        // Algorithm 2's greedy balancing keeps the spread below one max-length
        // request per the batching invariant.
        assert!(
            max - min <= spec.max_prompt_len,
            "spread {min}..{max} too wide"
        );
        assert_eq!(
            round.occupancy.iter().sum::<u64>(),
            round.report.requests,
            "occupancy must account for every request in the round"
        );
    }
}

#[test]
fn zero_generation_requests_complete_at_prefill_end() {
    // The engine-backed session completes gen_len == 0 requests inside the
    // admission pass (nothing to decode), without stalling the wave loop.
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 64)
        .unwrap()
        .with_mode(ServingMode::Continuous);
    let mut queue: Vec<Request> = (0..20).map(|i| Request::new(i, 100, 64)).collect();
    queue.extend((20..25).map(|i| Request::new(i, 100, 0)));
    let report = session.serve(queue).unwrap();
    assert_eq!(report.served_requests(), 25);
    for l in report.latencies.iter().filter(|l| l.request.gen_len == 0) {
        assert_eq!(l.per_token.as_secs(), 0.0);
        assert_eq!(
            l.completion_time, l.ttft,
            "zero-gen completes at first token"
        );
    }
}

#[test]
fn admission_events_are_chronological_under_online_arrivals() {
    // One global engine clock in both modes: rounds/waves are reported in
    // execution order with non-decreasing admission instants, and arrivals
    // are never admitted before they exist.
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let mut queue = spec.sample_requests_mixed_gen(300, 7);
    ArrivalProcess::Poisson { rate_per_sec: 1.5 }.stamp(&mut queue, 13);
    for mode in [ServingMode::RoundToCompletion, ServingMode::Continuous] {
        let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 64)
            .unwrap()
            .with_mode(mode);
        let report = session.serve(queue.clone()).unwrap();
        assert_eq!(report.served_requests() + report.aborted.len(), 300);
        for pair in report.rounds.windows(2) {
            assert!(
                pair[0].admitted_at <= pair[1].admitted_at,
                "{mode}: admission instants must be chronological"
            );
        }
        for l in &report.latencies {
            assert!(l.ttft.as_secs() >= 0.0, "{mode}: no service before arrival");
        }
    }
}

#[test]
fn oversized_requests_abort_and_the_rest_are_served() {
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 64).unwrap();
    let budget = session.batching_config().cache_tokens_per_micro_batch;
    let mut queue: Vec<Request> = (0..10).map(|i| Request::new(i, 100, 64)).collect();
    queue.push(Request::new(10, budget, 64));
    let report = session.serve(queue).unwrap();
    assert_eq!(report.served_requests(), 10);
    assert_eq!(report.aborted.len(), 1);
    assert_eq!(report.aborted[0].id, 10);
}
