//! End-to-end tests of the cluster serving layer (ISSUE 4): every built-in
//! [`Router`] upholds the fleet-wide serving invariants in both modes, a
//! homogeneous fleet scales throughput nearly linearly, load-aware routers
//! beat round-robin on tail latency over a heterogeneous fleet, and custom
//! out-of-crate routers plug in through the trait.

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterSpec, ClusterSpecError, EngineError, EvalSetting,
    KvAware, LeastOutstandingTokens, NodeSpec, ReplicaId, ReplicaSpec, ReplicaView, RoundRobin,
    Router, RouterCtx, ServeSpec, ServingMode, SloSpec, SystemEvaluator, SystemKind,
};
use moe_workload::{ArrivalProcess, Request, WorkloadSpec};
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn cluster_evaluator() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model())
}

/// A 4-replica homogeneous T4 fleet under online Poisson load with mixed
/// generation lengths — the router-differentiating regime.
fn homogeneous_scenario(mode: ServingMode, router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_count(600)
    .with_mixed_gen_lens()
    .with_seed(17)
    .with_mode(mode)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
}

#[test]
fn every_router_serves_every_request_exactly_once_in_both_modes() {
    let eval = cluster_evaluator();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let report = eval.run(&homogeneous_scenario(mode, router)).unwrap();
            assert_eq!(report.router, name);
            assert_eq!(report.mode, mode);
            let mut ids: Vec<u64> = report
                .replicas
                .iter()
                .flat_map(|r| {
                    r.report
                        .latencies
                        .iter()
                        .map(|l| l.request.id)
                        .chain(r.report.aborted.iter().map(|req| req.id))
                })
                .chain(report.fleet_aborted.iter().map(|req| req.id))
                .collect();
            ids.sort_unstable();
            assert_eq!(
                ids,
                (0..600).collect::<Vec<u64>>(),
                "{name} [{mode}]: every request must land on exactly one replica, served or aborted"
            );
            // Token accounting holds fleet-wide.
            let generated: u64 = report
                .replicas
                .iter()
                .flat_map(|r| r.report.latencies.iter())
                .map(|l| l.request.gen_len)
                .sum();
            assert_eq!(report.totals.generated_tokens, generated, "{name} [{mode}]");
        }
    }
}

#[test]
fn every_replica_respects_its_kv_budget_at_every_event_for_every_router() {
    let eval = cluster_evaluator();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let report = eval.run(&homogeneous_scenario(mode, router)).unwrap();
            for replica in &report.replicas {
                let budget = replica.kv_budget_per_micro_batch;
                let ubs = replica.report.policy.micro_batch_size;
                for round in &replica.report.rounds {
                    for (i, &reserved) in round.kv_reserved.iter().enumerate() {
                        assert!(
                            reserved <= budget,
                            "{name} [{mode}] {}: event {} micro-batch {i} reserves {reserved} > {budget}",
                            replica.id,
                            round.round
                        );
                    }
                    assert!(
                        round.occupancy.iter().all(|&o| o <= ubs),
                        "{name} [{mode}] {}: event {} exceeds the micro-batch request cap",
                        replica.id,
                        round.round
                    );
                }
            }
        }
    }
}

#[test]
fn four_replicas_give_nearly_linear_throughput_under_saturating_load() {
    // Saturating offline load (everything arrives at time zero): a 4-replica
    // homogeneous fleet must reach at least 3.5x the single-replica fleet
    // throughput on the same fleet-wide queue. In the offloading regime a
    // round costs nearly the same whether its batch is full or not (steps are
    // weight-streaming-bound), so the queue is sized to a whole number of full
    // batches per replica — 8 policy batches fleet-wide, i.e. 8 rounds on one
    // replica vs 2 rounds on each of four.
    let evaluator = SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model());
    let spec = WorkloadSpec::mtbench();
    let shape = evaluator.workload_shape(SystemKind::MoeLightning, &spec, 64);
    let batch = evaluator
        .policy_for(SystemKind::MoeLightning, &shape)
        .unwrap()
        .batch_size as usize;
    let eval = cluster_evaluator();
    let scenario = |n: usize| {
        ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
            .with_count(8 * batch)
            .with_gen_len(64)
            .with_seed(5)
            .into_cluster(NodeSpec::t4_single().replicated(n))
    };
    let single = eval.run(&scenario(1)).unwrap();
    let quad = eval.run(&scenario(4)).unwrap();
    assert_eq!(single.served_requests(), 8 * batch);
    assert_eq!(quad.served_requests(), 8 * batch);
    let speedup = quad.fleet_throughput() / single.fleet_throughput();
    assert!(
        speedup >= 3.5,
        "4 replicas must give >= 3.5x fleet throughput, got {speedup:.2}x \
         ({:.1} vs {:.1} tok/s)",
        quad.fleet_throughput(),
        single.fleet_throughput()
    );
}

#[test]
fn load_aware_routers_beat_round_robin_on_p99_ttft_over_a_heterogeneous_fleet() {
    // A mixed T4+L4 fleet under Poisson load at the fleet's joint service
    // rate, with a capacity-bound policy (64 concurrent requests per replica)
    // so admission control genuinely queues: round-robin splits arrivals
    // evenly, overloading the slower T4 (whose service rate is well under half
    // the fleet's), while least-outstanding-tokens and KV-aware routing shift
    // work to the replica that is actually draining (the L4).
    let spec = WorkloadSpec::mtbench();
    let gen = 64;
    let policy = moe_lightning::Policy::offload_default(64, 16);
    let service_rate = |setting: EvalSetting| {
        let report = SystemEvaluator::new(setting.node(), setting.model())
            .run(
                &ServeSpec::new(SystemKind::MoeLightning, spec.clone())
                    .with_count(300)
                    .with_gen_len(gen)
                    .with_seed(29)
                    .with_policy(policy)
                    .with_mode(ServingMode::Continuous),
            )
            .unwrap();
        report.served_requests() as f64 / report.total_time().as_secs()
    };
    let fleet_rate = service_rate(EvalSetting::S1) + service_rate(EvalSetting::S2);
    let eval = cluster_evaluator();
    let run = |router: Arc<dyn Router>| {
        let scenario = ClusterSpec::new(SystemKind::MoeLightning, spec.clone())
            .with_replica(ReplicaSpec::new(NodeSpec::t4_single()).with_policy(policy))
            .with_replica(ReplicaSpec::new(NodeSpec::l4_single()).with_policy(policy))
            .with_count(400)
            .with_gen_len(gen)
            .with_seed(29)
            .with_mode(ServingMode::Continuous)
            .with_arrivals(ArrivalProcess::Poisson {
                rate_per_sec: fleet_rate,
            })
            .with_router(router);
        eval.run(&scenario).unwrap()
    };
    let rr = run(Arc::new(RoundRobin));
    let lot = run(Arc::new(LeastOutstandingTokens));
    let kv = run(Arc::new(KvAware));
    assert_eq!(rr.served_requests(), 400);
    let (rr_p99, lot_p99, kv_p99) = (
        rr.ttft().p99.as_secs(),
        lot.ttft().p99.as_secs(),
        kv.ttft().p99.as_secs(),
    );
    assert!(
        lot_p99 < rr_p99,
        "least-outstanding-tokens p99 TTFT ({lot_p99:.1}s) must beat round-robin ({rr_p99:.1}s)"
    );
    assert!(
        kv_p99 < rr_p99,
        "kv-aware p99 TTFT ({kv_p99:.1}s) must beat round-robin ({rr_p99:.1}s)"
    );
}

#[test]
fn custom_routers_plug_in_through_the_trait() {
    /// An out-of-crate strategy: stick to the first replica until its
    /// projected KV headroom cannot take the request, then overflow to the
    /// replica with the most headroom.
    #[derive(Debug)]
    struct StickyOverflow;

    impl Router for StickyOverflow {
        fn name(&self) -> &'static str {
            "sticky-overflow"
        }

        fn route(
            &self,
            request: &Request,
            replicas: &[ReplicaView],
            _ctx: &mut RouterCtx,
        ) -> ReplicaId {
            let first = &replicas[0];
            if first.kv_headroom() >= request.max_context() {
                first.id
            } else {
                replicas
                    .iter()
                    .max_by_key(|v| (v.kv_headroom(), std::cmp::Reverse(v.id)))
                    .expect("non-empty views")
                    .id
            }
        }
    }

    let eval = cluster_evaluator();
    let report = eval
        .run(
            &ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                3,
            )
            .with_count(300)
            .with_gen_len(32)
            .with_seed(3)
            .with_mode(ServingMode::Continuous)
            .with_router(Arc::new(StickyOverflow)),
        )
        .unwrap();
    assert_eq!(report.router, "sticky-overflow");
    assert_eq!(report.served_requests(), 300);
    // Stickiness shows: replica 0 served strictly more than any other.
    let served: Vec<usize> = report
        .replicas
        .iter()
        .map(|r| r.report.served_requests())
        .collect();
    assert!(
        served[0] > served[1] && served[0] > served[2],
        "sticky routing must concentrate load on replica 0: {served:?}"
    );
}

#[test]
fn slo_goodput_and_attainment_are_consistent() {
    let eval = cluster_evaluator();
    let slo_loose = SloSpec {
        ttft: moe_lightning::Seconds::from_secs(1e9),
        per_token: moe_lightning::Seconds::from_secs(1e9),
    };
    let slo_impossible = SloSpec {
        ttft: moe_lightning::Seconds::ZERO,
        per_token: moe_lightning::Seconds::ZERO,
    };
    let report = eval
        .run(
            &homogeneous_scenario(ServingMode::Continuous, Arc::new(LeastOutstandingTokens))
                .with_slo(slo_loose),
        )
        .unwrap();
    assert_eq!(report.slo, Some(slo_loose));
    // Every served request attains an unbounded SLO; none attain a zero one.
    let total = report.served_requests() + report.aborted_requests();
    let expected_pct = 100.0 * report.served_requests() as f64 / total as f64;
    assert!((report.slo_attainment_pct(&slo_loose) - expected_pct).abs() < 1e-9);
    assert_eq!(report.slo_attainment_pct(&slo_impossible), 0.0);
    assert!((report.goodput(&slo_loose) - report.fleet_throughput()).abs() < 1e-9);
    assert_eq!(report.goodput(&slo_impossible), 0.0);
    // Makespan bounds every replica's busy span.
    assert!(report.makespan().as_secs() > 0.0);
}

#[test]
fn invalid_cluster_specs_surface_as_typed_errors() {
    let eval = cluster_evaluator();
    let empty = ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench());
    let err = eval.run(&empty).unwrap_err();
    assert!(matches!(
        err,
        EngineError::InvalidClusterSpec {
            reason: ClusterSpecError::NoReplicas
        }
    ));
    let zero = ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        2,
    )
    .with_count(0);
    let err = eval.run(&zero).unwrap_err();
    assert!(matches!(
        err,
        EngineError::InvalidClusterSpec {
            reason: ClusterSpecError::ZeroRequests
        }
    ));
    // EngineError is non_exhaustive: downstream matches keep a wildcard arm.
    match err {
        EngineError::InvalidClusterSpec { .. } => {}
        _ => unreachable!("typed cluster error expected"),
    }
}
