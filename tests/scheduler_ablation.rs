//! End-to-end tests of the pluggable scheduler layer (ISSUE 3): every
//! `Scheduler` implementation upholds the serving invariants in both modes, and
//! the Tab. 5 scheduler ablation orders as the paper predicts — Algorithm 2's
//! balanced, length-sorted batching beats FCFS-padded and token-budget
//! admission on generation throughput for the mixed-`gen_len` MTBench queue.

use moe_lightning::{
    EngineError, EvalSetting, ServeSpec, ServingMode, ServingSession, SystemEvaluator, SystemKind,
};
use moe_workload::{
    builtin_schedulers, Algorithm2, FcfsPadded, Scheduler, TokenBudget, WorkloadSpec,
};
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn evaluator() -> SystemEvaluator {
    SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model())
}

/// The Tab. 5 scheduler-ablation scenario: an unpadded mixed-`gen_len` MTBench
/// queue on MoE-Lightning, with the policy sized for the expected (mean)
/// generation length so the KV budget genuinely binds — the regime where batch
/// formation differentiates schedulers. Queue size and seed are pinned: the
/// comparison is deterministic, not statistical.
fn ablation_scenario(mode: ServingMode, scheduler: Arc<dyn Scheduler>) -> ServeSpec {
    ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
        .with_count(1000)
        .with_mixed_gen_lens()
        .with_seed(11)
        .with_mode(mode)
        .with_scheduler(scheduler)
}

#[test]
fn every_scheduler_serves_every_request_exactly_once_in_both_modes() {
    let eval = evaluator();
    for mode in MODES {
        for scheduler in builtin_schedulers() {
            let name = scheduler.name();
            let report = eval
                .run(&ablation_scenario(mode, Arc::from(scheduler)))
                .unwrap();
            assert_eq!(report.scheduler, name);
            assert_eq!(report.mode, mode);
            let mut ids: Vec<u64> = report
                .latencies
                .iter()
                .map(|l| l.request.id)
                .chain(report.aborted.iter().map(|r| r.id))
                .collect();
            ids.sort_unstable();
            assert_eq!(
                ids,
                (0..1000).collect::<Vec<u64>>(),
                "{name} [{mode}]: every request must be served or aborted exactly once"
            );
            let generated: u64 = report.latencies.iter().map(|l| l.request.gen_len).sum();
            assert_eq!(
                report.totals.generated_tokens, generated,
                "{name} [{mode}]: token accounting must hold"
            );
        }
    }
}

#[test]
fn every_scheduler_respects_the_kv_budget_at_every_scheduling_event() {
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let queue = spec.sample_requests_mixed_gen(500, 23);
    for mode in MODES {
        for scheduler in builtin_schedulers() {
            let name = scheduler.name();
            let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 256)
                .unwrap()
                .with_mode(mode)
                .with_scheduler(Arc::from(scheduler));
            let budget = session.batching_config().cache_tokens_per_micro_batch;
            let ubs = session.batching_config().max_requests_per_micro_batch as u64;
            let report = session.serve(queue.clone()).unwrap();
            assert!(!report.rounds.is_empty(), "{name} [{mode}]: nothing served");
            for round in &report.rounds {
                for (i, &reserved) in round.kv_reserved.iter().enumerate() {
                    assert!(
                        reserved <= budget,
                        "{name} [{mode}]: event {} micro-batch {i} reserves {reserved} > {budget}",
                        round.round
                    );
                }
                assert!(
                    round.occupancy.iter().all(|&o| o <= ubs),
                    "{name} [{mode}]: event {} exceeds the micro-batch request cap",
                    round.round
                );
            }
        }
    }
}

#[test]
fn algorithm2_beats_fcfs_padded_and_token_budget_on_mixed_gen_lens() {
    // The Tab. 5 acceptance ordering, in both serving modes: balanced,
    // length-sorted batching (Algorithm 2) extracts at least as much generation
    // throughput as FCFS-with-padding and greedy token-budget admission.
    let eval = evaluator();
    for mode in MODES {
        let algo2 = eval
            .run(&ablation_scenario(mode, Arc::new(Algorithm2)))
            .unwrap();
        let fcfs = eval
            .run(&ablation_scenario(mode, Arc::new(FcfsPadded)))
            .unwrap();
        let token = eval
            .run(&ablation_scenario(mode, Arc::new(TokenBudget)))
            .unwrap();
        assert!(
            algo2.generation_throughput() >= fcfs.generation_throughput(),
            "{mode}: Algorithm 2 ({:.2} tok/s) must not lose to FCFS-padded ({:.2} tok/s)",
            algo2.generation_throughput(),
            fcfs.generation_throughput()
        );
        assert!(
            algo2.generation_throughput() >= token.generation_throughput(),
            "{mode}: Algorithm 2 ({:.2} tok/s) must not lose to token-budget ({:.2} tok/s)",
            algo2.generation_throughput(),
            token.generation_throughput()
        );
        // Padding wastes KV capacity, so the padded scheduler schedules more
        // rounds/waves than Algorithm 2 needs for the same queue.
        assert!(
            fcfs.rounds.len() >= algo2.rounds.len(),
            "{mode}: padded KV reservations must not need fewer scheduling events"
        );
    }
}

#[test]
fn custom_schedulers_plug_in_through_the_trait() {
    /// A deliberately bad strategy: admit at most one request per micro-batch
    /// per scheduling event, to prove out-of-crate implementations work.
    #[derive(Debug)]
    struct OnePerMicroBatch;

    impl Scheduler for OnePerMicroBatch {
        fn name(&self) -> &'static str {
            "one-per-mb"
        }

        fn backfill(
            &self,
            queue: &[moe_workload::Request],
            cfg: &moe_workload::BatchingConfig,
            occupied: &[moe_workload::PartitionState],
        ) -> moe_workload::BackfillResult {
            let mut throttled = *cfg;
            throttled.max_requests_per_micro_batch = 1;
            let already: usize = occupied.iter().map(|p| p.requests).sum();
            // Keep the config valid even when micro-batches already hold work.
            throttled.max_scheduled_requests = cfg
                .max_scheduled_requests
                .min(already + cfg.num_micro_batches);
            Algorithm2.backfill(queue, &throttled, occupied)
        }
    }

    let eval = evaluator();
    let report = eval
        .run(
            &ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
                .with_count(40)
                .with_gen_len(32)
                .with_scheduler(Arc::new(OnePerMicroBatch)),
        )
        .unwrap();
    assert_eq!(report.scheduler, "one-per-mb");
    assert_eq!(report.served_requests(), 40);
    let n_ub = report.policy.num_micro_batches();
    for round in &report.rounds {
        assert!(round.report.requests <= n_ub);
        assert!(round.occupancy.iter().all(|&o| o <= 1));
    }
}

#[test]
fn invalid_batching_configs_surface_as_typed_errors() {
    let eval = evaluator();
    let session = ServingSession::with_policy(
        &eval,
        SystemKind::MoeLightning,
        moe_lightning::Policy::offload_default(16, 4),
        moe_lightning::WorkloadShape::new(0, 0),
    );
    let err = session
        .serve(vec![moe_workload::Request::new(0, 10, 10)])
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidBatchingConfig { .. }));
}
