//! Integration tests for the functional offloading runtime: the multi-threaded
//! CGOPipe-style pipeline must produce exactly the same tokens as the sequential
//! reference model while exercising the paged-weight and KV-cache substrates.

use moe_hardware::ByteSize;
use moe_lightning::{EngineConfig, MoeModelConfig, PipelinedMoeEngine};
use moe_model::ReferenceMoeModel;
use moe_workload::WorkloadSpec;

#[test]
fn pipelined_runtime_matches_reference_on_a_sampled_workload() {
    let cfg = MoeModelConfig::tiny();
    let model = ReferenceMoeModel::random(&cfg, 99).unwrap();
    let reference = model.clone();
    let engine = PipelinedMoeEngine::new(
        model,
        EngineConfig {
            micro_batch_size: 3,
            weight_pages_per_layer: 2,
            ..EngineConfig::default()
        },
    )
    .unwrap();

    // Sample a small MTBench-like batch of variable-length prompts (token ids folded
    // into the tiny vocabulary).
    let requests = WorkloadSpec::mtbench().sample_requests(6, 5, 123);
    let prompts: Vec<Vec<u32>> = requests
        .iter()
        .map(|r| {
            (0..(r.input_len % 6 + 1))
                .map(|i| ((r.id * 37 + i * 11) % 256) as u32)
                .collect()
        })
        .collect();

    let gen_len = 5;
    let output = engine.generate(&prompts, gen_len).unwrap();
    assert_eq!(output.tokens.len(), prompts.len());
    for (prompt, generated) in prompts.iter().zip(&output.tokens) {
        let expected = reference.generate_greedy(prompt, gen_len).unwrap();
        assert_eq!(generated, &expected);
    }
    assert!(output.h2d_bytes > ByteSize::ZERO);
    assert!(output.d2h_bytes > ByteSize::ZERO);
}

#[test]
fn weight_streaming_traffic_scales_with_decode_steps() {
    let cfg = MoeModelConfig::tiny();
    let make_engine = || {
        PipelinedMoeEngine::new(
            ReferenceMoeModel::random(&cfg, 5).unwrap(),
            EngineConfig::default(),
        )
        .unwrap()
    };
    let short = make_engine().generate(&[vec![1, 2, 3]], 3).unwrap();
    let long = make_engine().generate(&[vec![1, 2, 3]], 9).unwrap();
    // 2 pipelined passes vs 8 pipelined passes → 4x the streamed weight bytes.
    let ratio = long.h2d_bytes.as_bytes() as f64 / short.h2d_bytes.as_bytes() as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "expected ≈4x more H2D traffic, got {ratio:.2}x"
    );
}

#[test]
fn gpu_pool_peak_stays_within_the_double_buffer_budget() {
    // The paged weight store may hold at most: static fraction + 2 × W_L (double
    // buffer) of GPU memory — the engine's peak must respect that bound (plus the
    // pinned/page rounding slack).
    let cfg = MoeModelConfig::tiny();
    let model = ReferenceMoeModel::random(&cfg, 1).unwrap();
    let engine = PipelinedMoeEngine::new(model, EngineConfig::default()).unwrap();
    let output = engine.generate(&[vec![1, 2, 3], vec![4, 5]], 4).unwrap();
    let bound = cfg.layer_weight_bytes() * 2 + ByteSize::from_kib(64.0);
    assert!(
        output.gpu_peak <= bound,
        "GPU peak {} exceeds the double-buffer budget {}",
        output.gpu_peak,
        bound
    );
}

#[test]
fn facade_crate_re_exports_the_whole_stack() {
    // The workspace facade should give downstream users one import path.
    use moe_lightning_suite::lightning;
    let setting = lightning::EvalSetting::S1;
    assert_eq!(setting.model().name, "Mixtral-8x7B");
    assert!(setting.node().cpu_memory() > setting.node().total_gpu_memory());
}
