//! End-to-end tests of disaggregated prefill/decode serving (ISSUE 9):
//! exactly-once request conservation under churn on split fleets for every
//! built-in router in both serving modes, indexed==scan loop equivalence
//! in disaggregated dispatch, migration latency landing on the TTFT path,
//! prefix-cache + session-sticky routing accounting, and a property sweep
//! over random pool splits.

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterReport, ClusterSpec, EvalSetting, FleetTimeline,
    InterconnectSpec, LeastOutstandingTokens, NodeSpec, Policy, PrefixAware, ReplicaId,
    ReplicaRole, ReplicaSpec, Router, Seconds, ServingMode, StickySession, SystemKind,
};
use moe_workload::{ArrivalProcess, GenLens, Request, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn evaluator() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model())
}

fn scan() -> ClusterEvaluator {
    evaluator().with_scan_loop()
}

fn secs(s: f64) -> Seconds {
    Seconds::from_secs(s)
}

fn policy() -> Policy {
    Policy::offload_default(64, 16)
}

/// A 4-replica T4 fleet split `prefill` prefill + rest decode (or fully
/// unified at `prefill == 0`), under online Poisson load.
fn split_fleet(prefill: usize, count: usize, seed: u64, mode: ServingMode) -> ClusterSpec {
    let node = NodeSpec::t4_single();
    let mut spec = ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
        .with_count(count)
        .with_mixed_gen_lens()
        .with_seed(seed)
        .with_mode(mode)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 });
    for i in 0..4 {
        let role = if prefill == 0 {
            ReplicaRole::Unified
        } else if i < prefill {
            ReplicaRole::Prefill
        } else {
            ReplicaRole::Decode
        };
        spec = spec.with_replica(
            ReplicaSpec::new(node.clone())
                .with_policy(policy())
                .with_role(role),
        );
    }
    spec
}

/// Every synthesized request must land in exactly one of served / aborted /
/// rejected, exactly once, with token accounting intact.
fn assert_conserved(report: &ClusterReport, count: usize, label: &str) {
    let mut ids: Vec<u64> = report
        .replicas
        .iter()
        .flat_map(|r| {
            r.report
                .latencies
                .iter()
                .map(|l| l.request.id)
                .chain(r.report.aborted.iter().map(|req| req.id))
        })
        .chain(report.fleet_aborted.iter().map(|req| req.id))
        .chain(report.availability.rejected.iter().map(|req| req.id))
        .collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..count as u64).collect::<Vec<u64>>(),
        "{label}: completed + rejected + aborted must equal arrived, exactly once"
    );
    let generated: u64 = report
        .replicas
        .iter()
        .flat_map(|r| r.report.latencies.iter())
        .map(|l| l.request.gen_len)
        .sum();
    assert_eq!(
        report.totals.generated_tokens, generated,
        "{label}: handoff stubs must not leave phantom generated tokens"
    );
}

fn assert_reports_identical(a: &ClusterReport, b: &ClusterReport, label: &str) {
    assert_eq!(
        a.availability, b.availability,
        "{label}: availability accounting diverged"
    );
    assert_eq!(a.totals, b.totals, "{label}: fleet totals diverged");
    assert_eq!(a, b, "{label}: reports diverged");
}

/// Exactly-once accounting on a disaggregated 2p+2d fleet under full churn —
/// a decode failure (losing in-flight migrated KV), a delayed unified join
/// and a prefill drain — for every built-in router in both serving modes.
#[test]
fn disagg_churn_conserves_every_request_for_every_router_in_both_modes() {
    let eval = evaluator();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let spec = split_fleet(2, 400, 17, mode)
                .with_router(router)
                .with_timeline(
                    FleetTimeline::new()
                        .fail_at(secs(50.0), ReplicaId(3))
                        .join_at(secs(60.0), ReplicaSpec::new(NodeSpec::t4_single()))
                        .drain_at(secs(90.0), ReplicaId(0))
                        .with_provisioning_delay(secs(20.0)),
                );
            let report = eval.run(&spec).unwrap();
            assert_conserved(&report, 400, &format!("{name} [{mode}]"));
            assert_eq!(
                report.availability.failures,
                vec![(ReplicaId(3), secs(50.0))],
                "{name} [{mode}]"
            );
            assert!(
                !report.availability.rerouted.is_empty(),
                "{name} [{mode}]: losing a decode replica mid-run must re-route work"
            );
        }
    }
}

/// The indexed fleet loop must reproduce the linear scan loop bit-for-bit
/// in disaggregated dispatch (where migrations force per-event stepping),
/// for every built-in router in both serving modes.
#[test]
fn indexed_loop_matches_scan_in_disagg_mode() {
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let want = scan()
                .run(&split_fleet(1, 200, 11, mode).with_router(router.clone()))
                .unwrap();
            let got = evaluator()
                .run(&split_fleet(1, 200, 11, mode).with_router(router))
                .unwrap();
            assert_reports_identical(&want, &got, &format!("{name} [{mode}] disagg"));
        }
    }
}

/// Prefill replicas do real prompt work but never deliver a generation:
/// after handoff scrubbing, every served latency lives on a decode replica.
#[test]
fn prefill_replicas_deliver_no_generations() {
    let report = evaluator()
        .run(&split_fleet(2, 200, 11, ServingMode::Continuous))
        .unwrap();
    assert_conserved(&report, 200, "2p+2d");
    for prefill in &report.replicas[..2] {
        assert!(
            prefill.report.latencies.is_empty(),
            "replica {:?} is prefill-only: its stub completions are plumbing, \
             not served requests",
            prefill.id
        );
    }
    let decode_served: usize = report.replicas[2..]
        .iter()
        .map(|r| r.report.served_requests())
        .sum();
    assert_eq!(decode_served, report.served_requests());
    assert!(decode_served > 0, "the decode pool must actually serve");
}

/// KV migration is priced on the fleet interconnect and lands on the TTFT
/// path: the same split fleet on a starved link has strictly worse first-token
/// latency than on the default RDMA-class fabric, while a unified fleet is
/// indifferent to the link (it never migrates).
#[test]
fn migration_latency_lands_on_the_ttft_path() {
    let eval = evaluator();
    let fast = eval
        .run(&split_fleet(2, 200, 11, ServingMode::Continuous))
        .unwrap();
    let starved_link = InterconnectSpec::new(0.005, secs(2.0));
    let starved = eval
        .run(&split_fleet(2, 200, 11, ServingMode::Continuous).with_interconnect(starved_link))
        .unwrap();
    assert!(
        starved.ttft().p50 > fast.ttft().p50 + secs(1.0),
        "a 2 s/transfer link must add at least its latency floor to median \
         TTFT: {:.2}s vs {:.2}s",
        starved.ttft().p50.as_secs(),
        fast.ttft().p50.as_secs()
    );
    assert_conserved(&starved, 200, "starved link");
    let unified_fast = eval
        .run(&split_fleet(0, 200, 11, ServingMode::Continuous))
        .unwrap();
    let unified_starved = eval
        .run(&split_fleet(0, 200, 11, ServingMode::Continuous).with_interconnect(starved_link))
        .unwrap();
    assert_eq!(
        unified_fast, unified_starved,
        "a unified fleet never touches the interconnect"
    );
}

/// The multi-turn session queue: `count` requests re-sessioned into
/// `count / turns` conversations, preserving the calibrated arrival stamps.
fn session_queue(count: usize, turns: u64, seed: u64) -> Vec<Request> {
    WorkloadSpec::mtbench()
        .synthesize_queue(
            count,
            GenLens::Uniform(64),
            seed,
            false,
            &ArrivalProcess::Poisson { rate_per_sec: 2.0 },
        )
        .into_iter()
        .map(|r| {
            let session = r.id / turns;
            r.with_session(session)
        })
        .collect()
}

/// Prefix caches + session-affine routing: sticky and prefix-aware routers
/// actually produce cache hits on a multi-turn queue, accounting stays
/// exactly-once, and cached prefill never changes *what* is generated — only
/// how fast the prompt side goes.
#[test]
fn prefix_caches_hit_under_session_affine_routing() {
    let eval = evaluator();
    let queue = session_queue(240, 8, 29);
    let base = || {
        split_fleet(0, 240, 29, ServingMode::Continuous)
            .with_queue(queue.clone())
            .with_prefix_cache(64 * 1024)
    };
    // Fresh router instances per run: session maps are stateful.
    let routers: Vec<(&str, Arc<dyn Router>)> = vec![
        (
            "sticky-session",
            Arc::new(StickySession::new(Arc::new(LeastOutstandingTokens))),
        ),
        ("prefix-aware", Arc::new(PrefixAware::new())),
    ];
    let uncached = eval
        .run(
            &split_fleet(0, 240, 29, ServingMode::Continuous)
                .with_queue(queue.clone())
                .with_router(Arc::new(StickySession::new(Arc::new(
                    LeastOutstandingTokens,
                )))),
        )
        .unwrap();
    assert!(
        uncached.replicas.iter().all(|r| r.cache.is_none()),
        "no cache configured, none reported"
    );
    for (name, router) in routers {
        let report = eval.run(&base().with_router(router)).unwrap();
        assert_conserved(&report, 240, name);
        let stats: Vec<_> = report
            .replicas
            .iter()
            .map(|r| r.cache.expect("every replica carries a cache"))
            .collect();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let hit_tokens: u64 = stats.iter().map(|s| s.hit_tokens).sum();
        assert!(
            hits > 0 && hit_tokens > 0,
            "{name}: an 8-turn session queue must produce prefix hits"
        );
        assert!(
            stats.iter().all(|s| s.resident_tokens <= s.capacity_tokens),
            "{name}: eviction must keep every cache within capacity"
        );
        assert_eq!(
            report.totals.generated_tokens, uncached.totals.generated_tokens,
            "{name}: cached prefill skips prompt tokens, never generated ones"
        );
    }
}

/// Disaggregation composes with prefix caches and sticky routing without
/// breaking conservation or loop equivalence.
#[test]
fn disagg_with_caches_and_sticky_routing_stays_conserved_and_equivalent() {
    let queue = session_queue(200, 8, 31);
    let spec = || {
        split_fleet(1, 200, 31, ServingMode::Continuous)
            .with_queue(queue.clone())
            .with_prefix_cache(64 * 1024)
            .with_router(Arc::new(StickySession::new(Arc::new(
                LeastOutstandingTokens,
            ))))
    };
    let want = scan().run(&spec()).unwrap();
    let got = evaluator().run(&spec()).unwrap();
    assert_reports_identical(&want, &got, "disagg + cache + sticky");
    assert_conserved(&got, 200, "disagg + cache + sticky");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form: over random seeds, pool splits, loads and serving
    /// modes, disaggregated fleets conserve every request exactly once and
    /// the indexed loop matches the scan loop.
    #[test]
    fn disagg_conservation_and_equivalence_on_random_splits(
        seed in 0u64..1000,
        prefill in 1usize..4,
        count in 50usize..150,
        rate_x10 in 5u64..30,
        mode_seed in 0u8..2,
    ) {
        let mode = if mode_seed == 0 {
            ServingMode::RoundToCompletion
        } else {
            ServingMode::Continuous
        };
        let spec = || {
            split_fleet(prefill, count, seed, mode).with_arrivals(ArrivalProcess::Poisson {
                rate_per_sec: rate_x10 as f64 / 10.0,
            })
        };
        let want = scan().run(&spec()).unwrap();
        let got = evaluator().run(&spec()).unwrap();
        prop_assert_eq!(&want, &got);
        assert_conserved(&got, count, "random split");
    }
}
