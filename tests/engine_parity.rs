//! Parity suite gating the ISSUE 7 rebase of [`ServingSession::serve`] onto a
//! single-replica [`moe_lightning::ReplicaEngine`]: the engine-backed session
//! must reproduce the pre-refactor serving loops' [`ServingReport`]
//! field-by-field across every built-in scheduler, both serving modes and
//! three arrival processes — differentially against the preserved legacy
//! loops in `moe_lightning::reference`, against pinned fixture rows captured
//! from the pre-refactor code, and on randomized scenarios via proptest
//! (mirroring how `tests/loop_equivalence.rs` gated PR 6).
//!
//! Report ordering note: the legacy round-to-completion loop records served
//! latencies in admission (micro-batch) order while the engine records them at
//! their completion instants, so `latencies`/`aborted` are normalized to
//! request-id order on both sides before comparison. Every other field —
//! per-round accounting, totals, policy, schedule — must match exactly,
//! including float-for-float completion times inside each latency record.

use moe_lightning::{
    EvalSetting, Policy, ServeSpec, ServingMode, ServingReport, ServingSession, SystemEvaluator,
    SystemKind,
};
use moe_workload::{
    Algorithm2, ArrivalProcess, FcfsPadded, GenLens, Request, Scheduler, ShortestJobFirst,
    TokenBudget, WorkloadSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn schedulers() -> Vec<Arc<dyn Scheduler>> {
    vec![
        Arc::new(Algorithm2),
        Arc::new(ShortestJobFirst),
        Arc::new(TokenBudget),
        Arc::new(FcfsPadded),
    ]
}

fn arrivals() -> [(&'static str, ArrivalProcess); 3] {
    [
        ("imm", ArrivalProcess::Immediate),
        ("poisson", ArrivalProcess::Poisson { rate_per_sec: 2.0 }),
        (
            "burst",
            ArrivalProcess::Burst {
                size: 40,
                period_secs: 120.0,
            },
        ),
    ]
}

fn evaluator() -> SystemEvaluator {
    SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model())
}

/// Serves the same queue through the engine-backed session and through the
/// preserved legacy loops, returning both reports.
fn both_reports(
    eval: &SystemEvaluator,
    scheduler: Arc<dyn Scheduler>,
    mode: ServingMode,
    queue: Vec<Request>,
    policy: Policy,
) -> (ServingReport, ServingReport) {
    let workload = WorkloadSpec::mtbench();
    let shape = eval.workload_shape(
        SystemKind::MoeLightning,
        &workload,
        GenLens::MixedDefaults.policy_gen_for(&workload),
    );
    let session = ServingSession::with_policy(eval, SystemKind::MoeLightning, policy, shape)
        .with_mode(mode)
        .with_scheduler(scheduler);
    let engine = session.serve(queue.clone()).unwrap();
    let legacy = moe_lightning::reference::serve(&session, queue).unwrap();
    (engine, legacy)
}

/// Sorts the per-request collections into request-id order; all other fields
/// are left untouched so the comparison stays exact.
fn normalized(mut report: ServingReport) -> ServingReport {
    report.latencies.sort_by_key(|l| l.request.id);
    report.aborted.sort_by_key(|r| r.id);
    report
}

/// Field-by-field equality with labelled failures, then a whole-report check.
fn assert_reports_identical(engine: ServingReport, legacy: ServingReport, label: &str) {
    let engine = normalized(engine);
    let legacy = normalized(legacy);
    assert_eq!(engine.system, legacy.system, "{label}: system diverged");
    assert_eq!(engine.mode, legacy.mode, "{label}: mode diverged");
    assert_eq!(
        engine.scheduler, legacy.scheduler,
        "{label}: scheduler name diverged"
    );
    assert_eq!(engine.policy, legacy.policy, "{label}: policy diverged");
    assert_eq!(
        engine.schedule, legacy.schedule,
        "{label}: schedule diverged"
    );
    assert_eq!(
        engine.rounds.len(),
        legacy.rounds.len(),
        "{label}: round count diverged"
    );
    for (e, l) in engine.rounds.iter().zip(&legacy.rounds) {
        assert_eq!(e, l, "{label}: round {} diverged", l.round);
    }
    assert_eq!(
        engine.latencies.len(),
        legacy.latencies.len(),
        "{label}: served count diverged"
    );
    for (e, l) in engine.latencies.iter().zip(&legacy.latencies) {
        assert_eq!(
            e, l,
            "{label}: latency of request {} diverged",
            l.request.id
        );
    }
    assert_eq!(engine.aborted, legacy.aborted, "{label}: aborted diverged");
    assert_eq!(engine.totals, legacy.totals, "{label}: totals diverged");
    assert_eq!(engine, legacy, "{label}: reports diverged");
}

/// Tentpole differential: for every built-in scheduler, in both modes, under
/// offline and online arrivals, the engine-backed session reproduces the
/// legacy loops' report on the pinned seed-11 mixed-generation queue.
#[test]
fn engine_matches_legacy_for_every_scheduler_mode_and_arrival() {
    let eval = evaluator();
    let workload = WorkloadSpec::mtbench();
    for scheduler in schedulers() {
        for mode in MODES {
            for (aname, arrival) in arrivals() {
                let queue =
                    workload.synthesize_queue(400, GenLens::MixedDefaults, 11, false, &arrival);
                let (engine, legacy) = both_reports(
                    &eval,
                    Arc::clone(&scheduler),
                    mode,
                    queue,
                    Policy::offload_default(48, 12),
                );
                let label = format!("{} [{}] {aname}", scheduler.name(), mode.label());
                assert_reports_identical(engine, legacy, &label);
            }
        }
    }
}

/// Abort parity: requests whose prompt + generation alone exceed the
/// per-micro-batch KV budget are classified identically (and in the same
/// order) by both implementations, alongside the served remainder.
#[test]
fn engine_matches_legacy_with_oversized_requests() {
    let eval = evaluator();
    for mode in MODES {
        let mut queue: Vec<Request> = (0..30).map(|i| Request::new(i, 100, 64)).collect();
        // Interleave requests that can never fit the offload_default(48, 12)
        // budget at several queue positions.
        for (slot, id) in [(3usize, 30u64), (17, 31), (29, 32)] {
            queue.insert(slot, Request::new(id, 60_000, 64));
        }
        let (engine, legacy) = both_reports(
            &eval,
            Arc::new(Algorithm2),
            mode,
            queue,
            Policy::offload_default(48, 12),
        );
        assert_eq!(engine.aborted.len(), 3, "[{mode}] oversized must abort");
        assert_eq!(engine.served_requests(), 30);
        assert_reports_identical(engine, legacy, &format!("oversized [{mode}]"));
    }
}

/// Pinned fixtures captured from the *pre-refactor* `ServingSession::serve`
/// loops (commit 98a040b) on the seed-11 scenario grid: the engine-backed
/// session must keep reproducing them even after `crate::reference` retires.
/// Counts are exact; throughput and TTFT p50 were recorded to 9 decimal
/// digits, so they are compared at 1e-6 relative tolerance.
#[test]
fn engine_reproduces_pinned_legacy_fixtures() {
    #[allow(clippy::type_complexity)]
    const FIXTURES: [(&str, &str, &str, usize, usize, usize, u64, f64, f64); 24] = [
        (
            "algo2",
            "rtc",
            "imm",
            400,
            0,
            10,
            46368,
            2.339405782,
            9904.846394827,
        ),
        (
            "algo2",
            "rtc",
            "poisson",
            400,
            0,
            11,
            46368,
            2.286981924,
            10306.386802759,
        ),
        (
            "algo2",
            "rtc",
            "burst",
            400,
            0,
            10,
            46368,
            2.339356317,
            9424.107542113,
        ),
        (
            "algo2",
            "cont",
            "imm",
            400,
            0,
            37,
            46368,
            4.277323375,
            4945.140111894,
        ),
        (
            "algo2",
            "cont",
            "poisson",
            400,
            0,
            127,
            46368,
            4.268927950,
            3307.150610239,
        ),
        (
            "algo2",
            "cont",
            "burst",
            400,
            0,
            71,
            46368,
            4.274560581,
            3494.863907386,
        ),
        (
            "sjf",
            "rtc",
            "imm",
            400,
            0,
            11,
            46368,
            3.480643215,
            1529.037230043,
        ),
        (
            "sjf",
            "rtc",
            "poisson",
            400,
            0,
            12,
            46368,
            3.361648652,
            1847.869721253,
        ),
        (
            "sjf",
            "rtc",
            "burst",
            400,
            0,
            11,
            46368,
            3.082009480,
            2538.444447109,
        ),
        (
            "sjf",
            "cont",
            "imm",
            400,
            0,
            33,
            46368,
            3.775505888,
            1519.646674144,
        ),
        (
            "sjf",
            "cont",
            "poisson",
            400,
            0,
            77,
            46368,
            4.010052475,
            1583.585534068,
        ),
        (
            "sjf",
            "cont",
            "burst",
            400,
            0,
            67,
            46368,
            3.896866530,
            1044.526596419,
        ),
        (
            "token-budget",
            "rtc",
            "imm",
            400,
            0,
            9,
            46368,
            2.594627255,
            7958.640723126,
        ),
        (
            "token-budget",
            "rtc",
            "poisson",
            400,
            0,
            10,
            46368,
            2.527797536,
            8333.453129520,
        ),
        (
            "token-budget",
            "rtc",
            "burst",
            400,
            0,
            9,
            46368,
            2.594752519,
            7476.683139035,
        ),
        (
            "token-budget",
            "cont",
            "imm",
            400,
            0,
            38,
            46368,
            4.185307033,
            3726.883665232,
        ),
        (
            "token-budget",
            "cont",
            "poisson",
            400,
            0,
            113,
            46368,
            4.267310680,
            3148.184017178,
        ),
        (
            "token-budget",
            "cont",
            "burst",
            400,
            0,
            91,
            46368,
            4.183759779,
            2999.992345742,
        ),
        (
            "fcfs-pad",
            "rtc",
            "imm",
            400,
            0,
            24,
            46368,
            1.009920606,
            22474.102826029,
        ),
        (
            "fcfs-pad",
            "rtc",
            "poisson",
            400,
            0,
            25,
            46368,
            1.021448840,
            22857.422985776,
        ),
        (
            "fcfs-pad",
            "rtc",
            "burst",
            400,
            0,
            24,
            46368,
            1.032203700,
            21885.706217558,
        ),
        (
            "fcfs-pad",
            "cont",
            "imm",
            400,
            0,
            137,
            46368,
            3.697451884,
            5196.165087537,
        ),
        (
            "fcfs-pad",
            "cont",
            "poisson",
            400,
            0,
            191,
            46368,
            3.766730716,
            4853.864195301,
        ),
        (
            "fcfs-pad",
            "cont",
            "burst",
            400,
            0,
            143,
            46368,
            3.698560017,
            4470.686759378,
        ),
    ];

    fn close(got: f64, want: f64, what: &str, label: &str) {
        assert!(
            (got - want).abs() <= 1e-6 * want.abs().max(1.0),
            "{label}: {what} {got:.9} != pinned {want:.9}"
        );
    }

    let eval = evaluator();
    for scheduler in schedulers() {
        for mode in MODES {
            for (aname, arrival) in arrivals() {
                let spec = ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
                    .with_count(400)
                    .with_mixed_gen_lens()
                    .with_seed(11)
                    .with_mode(mode)
                    .with_arrivals(arrival)
                    .with_scheduler(Arc::clone(&scheduler))
                    .with_policy(Policy::offload_default(48, 12));
                let report = eval.run(&spec).unwrap();
                let label = format!("{} [{}] {aname}", scheduler.name(), mode.label());
                let row = FIXTURES
                    .iter()
                    .find(|r| r.0 == scheduler.name() && r.1 == mode.label() && r.2 == aname)
                    .unwrap_or_else(|| panic!("{label}: no pinned fixture row"));
                assert_eq!(report.served_requests(), row.3, "{label}: served diverged");
                assert_eq!(report.aborted.len(), row.4, "{label}: aborted diverged");
                assert_eq!(report.rounds.len(), row.5, "{label}: rounds diverged");
                assert_eq!(
                    report.totals.generated_tokens, row.6,
                    "{label}: generated tokens diverged"
                );
                close(report.generation_throughput(), row.7, "throughput", &label);
                close(report.ttft().p50.as_secs(), row.8, "TTFT p50", &label);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the parity guarantee: over random seeds, queue sizes,
    /// arrival rates, schedulers and serving modes, the engine-backed session
    /// and the legacy loops produce identical (id-order-normalized) reports.
    #[test]
    fn engine_matches_legacy_on_random_scenarios(
        seed in 0u64..1000,
        count in 40usize..200,
        rate_x10 in 5u64..40,
        mode_seed in 0u8..2,
        scheduler_idx in 0usize..4,
    ) {
        let mode = MODES[mode_seed as usize];
        let scheduler = schedulers().swap_remove(scheduler_idx);
        let eval = evaluator();
        let queue = WorkloadSpec::mtbench().synthesize_queue(
            count,
            GenLens::MixedDefaults,
            seed,
            false,
            &ArrivalProcess::Poisson {
                rate_per_sec: rate_x10 as f64 / 10.0,
            },
        );
        let (engine, legacy) = both_reports(
            &eval,
            scheduler,
            mode,
            queue,
            Policy::offload_default(48, 12),
        );
        prop_assert_eq!(normalized(engine), normalized(legacy));
    }
}
