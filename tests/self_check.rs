//! Self-check suite: the serving engine and the fleet loop pinned against
//! committed reports.
//!
//! This absorbs the retired `tests/engine_parity.rs` and
//! `tests/loop_equivalence.rs`: the legacy pre-refactor serving loops
//! (`moe_lightning::reference`) are gone, so instead of a differential run
//! against preserved duplicates, the suite pins
//!
//! * the single-node engine against the 24 fixture rows captured from the
//!   pre-refactor loops (commit 98a040b) — the engine must keep reproducing
//!   them bit-for-bit forever;
//! * the indexed fleet loop against the linear scan loop
//!   (`ClusterEvaluator::with_scan_loop`) across routers, serving modes,
//!   churn and thread counts — the two dispatch paths must stay report-
//!   identical;
//! * the pinned churn scenario against committed per-router digests in
//!   `tests/fixtures/self_check_digests.txt`. Regenerate after an
//!   *intentional* semantics change with
//!   `SELF_CHECK_REGEN=1 cargo test --test self_check` and commit the diff.

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterReport, ClusterSpec, EvalSetting, FleetTimeline,
    NodeSpec, Policy, QueueDepthScaler, ReplicaId, ReplicaSpec, Router, ScaleBounds, Seconds,
    ServeSpec, ServingMode, SystemEvaluator, SystemKind,
};
use moe_workload::{
    Algorithm2, ArrivalProcess, FcfsPadded, GenLens, Request, Scheduler, ShortestJobFirst,
    TokenBudget, WorkloadSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn schedulers() -> Vec<Arc<dyn Scheduler>> {
    vec![
        Arc::new(Algorithm2),
        Arc::new(ShortestJobFirst),
        Arc::new(TokenBudget),
        Arc::new(FcfsPadded),
    ]
}

fn arrivals() -> [(&'static str, ArrivalProcess); 3] {
    [
        ("imm", ArrivalProcess::Immediate),
        ("poisson", ArrivalProcess::Poisson { rate_per_sec: 2.0 }),
        (
            "burst",
            ArrivalProcess::Burst {
                size: 40,
                period_secs: 120.0,
            },
        ),
    ]
}

fn evaluator() -> SystemEvaluator {
    SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model())
}

fn scan() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model()).with_scan_loop()
}

fn indexed(threads: usize) -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model()).with_shard_threads(threads)
}

fn secs(s: f64) -> Seconds {
    Seconds::from_secs(s)
}

fn close(got: f64, want: f64, what: &str, label: &str) {
    assert!(
        (got - want).abs() <= 1e-6 * want.abs().max(1.0),
        "{label}: {what} {got:.9} != pinned {want:.9}"
    );
}

/// Pinned fixtures captured from the *pre-refactor* `ServingSession::serve`
/// loops (commit 98a040b) on the seed-11 scenario grid: the engine-backed
/// session must keep reproducing them even with `crate::reference` retired.
/// Counts are exact; throughput and TTFT p50 were recorded to 9 decimal
/// digits, so they are compared at 1e-6 relative tolerance.
#[test]
fn single_node_engine_reproduces_pinned_pre_refactor_reports() {
    // (scheduler, mode, arrival, served, aborted, rounds, generated, tput, ttft_p50)
    #[allow(clippy::type_complexity)]
    const FIXTURES: [(&str, &str, &str, usize, usize, usize, u64, f64, f64); 24] = [
        (
            "algo2",
            "rtc",
            "imm",
            400,
            0,
            10,
            46368,
            2.339405782,
            9904.846394827,
        ),
        (
            "algo2",
            "rtc",
            "poisson",
            400,
            0,
            11,
            46368,
            2.286981924,
            10306.386802759,
        ),
        (
            "algo2",
            "rtc",
            "burst",
            400,
            0,
            10,
            46368,
            2.339356317,
            9424.107542113,
        ),
        (
            "algo2",
            "cont",
            "imm",
            400,
            0,
            37,
            46368,
            4.277323375,
            4945.140111894,
        ),
        (
            "algo2",
            "cont",
            "poisson",
            400,
            0,
            127,
            46368,
            4.268927950,
            3307.150610239,
        ),
        (
            "algo2",
            "cont",
            "burst",
            400,
            0,
            71,
            46368,
            4.274560581,
            3494.863907386,
        ),
        (
            "sjf",
            "rtc",
            "imm",
            400,
            0,
            11,
            46368,
            3.480643215,
            1529.037230043,
        ),
        (
            "sjf",
            "rtc",
            "poisson",
            400,
            0,
            12,
            46368,
            3.361648652,
            1847.869721253,
        ),
        (
            "sjf",
            "rtc",
            "burst",
            400,
            0,
            11,
            46368,
            3.082009480,
            2538.444447109,
        ),
        (
            "sjf",
            "cont",
            "imm",
            400,
            0,
            33,
            46368,
            3.775505888,
            1519.646674144,
        ),
        (
            "sjf",
            "cont",
            "poisson",
            400,
            0,
            77,
            46368,
            4.010052475,
            1583.585534068,
        ),
        (
            "sjf",
            "cont",
            "burst",
            400,
            0,
            67,
            46368,
            3.896866530,
            1044.526596419,
        ),
        (
            "token-budget",
            "rtc",
            "imm",
            400,
            0,
            9,
            46368,
            2.594627255,
            7958.640723126,
        ),
        (
            "token-budget",
            "rtc",
            "poisson",
            400,
            0,
            10,
            46368,
            2.527797536,
            8333.453129520,
        ),
        (
            "token-budget",
            "rtc",
            "burst",
            400,
            0,
            9,
            46368,
            2.594752519,
            7476.683139035,
        ),
        (
            "token-budget",
            "cont",
            "imm",
            400,
            0,
            38,
            46368,
            4.185307033,
            3726.883665232,
        ),
        (
            "token-budget",
            "cont",
            "poisson",
            400,
            0,
            113,
            46368,
            4.267310680,
            3148.184017178,
        ),
        (
            "token-budget",
            "cont",
            "burst",
            400,
            0,
            91,
            46368,
            4.183759779,
            2999.992345742,
        ),
        (
            "fcfs-pad",
            "rtc",
            "imm",
            400,
            0,
            24,
            46368,
            1.009920606,
            22474.102826029,
        ),
        (
            "fcfs-pad",
            "rtc",
            "poisson",
            400,
            0,
            25,
            46368,
            1.021448840,
            22857.422985776,
        ),
        (
            "fcfs-pad",
            "rtc",
            "burst",
            400,
            0,
            24,
            46368,
            1.032203700,
            21885.706217558,
        ),
        (
            "fcfs-pad",
            "cont",
            "imm",
            400,
            0,
            137,
            46368,
            3.697451884,
            5196.165087537,
        ),
        (
            "fcfs-pad",
            "cont",
            "poisson",
            400,
            0,
            191,
            46368,
            3.766730716,
            4853.864195301,
        ),
        (
            "fcfs-pad",
            "cont",
            "burst",
            400,
            0,
            143,
            46368,
            3.698560017,
            4470.686759378,
        ),
    ];

    let eval = evaluator();
    for scheduler in schedulers() {
        for mode in MODES {
            for (aname, arrival) in arrivals() {
                let spec = ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
                    .with_count(400)
                    .with_mixed_gen_lens()
                    .with_seed(11)
                    .with_mode(mode)
                    .with_arrivals(arrival)
                    .with_scheduler(Arc::clone(&scheduler))
                    .with_policy(Policy::offload_default(48, 12));
                let report = eval.run(&spec).unwrap();
                let label = format!("{} [{}] {aname}", scheduler.name(), mode.label());
                let row = FIXTURES
                    .iter()
                    .find(|r| r.0 == scheduler.name() && r.1 == mode.label() && r.2 == aname)
                    .unwrap_or_else(|| panic!("{label}: no pinned fixture row"));
                assert_eq!(report.served_requests(), row.3, "{label}: served diverged");
                assert_eq!(report.aborted.len(), row.4, "{label}: aborted diverged");
                assert_eq!(report.rounds.len(), row.5, "{label}: rounds diverged");
                assert_eq!(
                    report.totals.generated_tokens, row.6,
                    "{label}: generated tokens diverged"
                );
                close(report.generation_throughput(), row.7, "throughput", &label);
                close(report.ttft().p50.as_secs(), row.8, "TTFT p50", &label);
            }
        }
    }
}

/// Oversized requests (prompt + generation beyond the per-micro-batch KV
/// budget) are classified as aborted up front, in queue order, in both modes
/// — and the run is deterministic across invocations.
#[test]
fn oversized_requests_abort_up_front_deterministically() {
    let eval = evaluator();
    for mode in MODES {
        let mut queue: Vec<Request> = (0..30).map(|i| Request::new(i, 100, 64)).collect();
        for (slot, id) in [(3usize, 30u64), (17, 31), (29, 32)] {
            queue.insert(slot, Request::new(id, 60_000, 64));
        }
        let workload = WorkloadSpec::mtbench();
        let shape = eval.workload_shape(
            SystemKind::MoeLightning,
            &workload,
            GenLens::MixedDefaults.policy_gen_for(&workload),
        );
        let session = moe_lightning::ServingSession::with_policy(
            &eval,
            SystemKind::MoeLightning,
            Policy::offload_default(48, 12),
            shape,
        )
        .with_mode(mode);
        let report = session.serve(queue.clone()).unwrap();
        assert_eq!(report.aborted.len(), 3, "[{mode}] oversized must abort");
        assert_eq!(report.served_requests(), 30);
        assert_eq!(
            report.aborted.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![30, 31, 32],
            "[{mode}] aborts keep queue order"
        );
        let again = session.serve(queue).unwrap();
        assert_eq!(report, again, "[{mode}] serve() must be deterministic");
    }
}

/// The pinned seed-11 churn scenario: a 4-replica T4 fleet under Poisson
/// load with a mid-run failure, a delayed join and a drain — every control
/// transition the loop handles, in one timeline.
fn churn_spec(mode: ServingMode, router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_count(400)
    .with_mixed_gen_lens()
    .with_seed(11)
    .with_mode(mode)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
    .with_timeline(
        FleetTimeline::new()
            .fail_at(secs(50.0), ReplicaId(1))
            .join_at(secs(60.0), ReplicaSpec::new(NodeSpec::t4_single()))
            .drain_at(secs(90.0), ReplicaId(0))
            .with_provisioning_delay(secs(20.0)),
    )
}

fn assert_reports_identical(a: &ClusterReport, b: &ClusterReport, label: &str) {
    // One field-by-field pass first so a mismatch names the diverging part
    // instead of dumping two full reports.
    assert_eq!(
        a.availability, b.availability,
        "{label}: availability accounting diverged"
    );
    assert_eq!(a.totals, b.totals, "{label}: fleet totals diverged");
    assert_eq!(
        a.replicas.len(),
        b.replicas.len(),
        "{label}: replica count diverged"
    );
    for (ra, rb) in a.replicas.iter().zip(&b.replicas) {
        assert_eq!(ra, rb, "{label}: replica {:?} diverged", ra.id);
    }
    assert_eq!(a, b, "{label}: reports diverged");
}

/// One digest line per report, pinned in the committed fixture file. Counts
/// are exact; the two floats are compared at 1e-6 relative tolerance.
fn digest(label: &str, report: &ClusterReport) -> String {
    format!(
        "{label}|served={}|aborted={}|rejected={}|rerouted={}|failures={}|drains={}|joins={}|generated={}|throughput={:.9}|ttft_p50={:.9}",
        report.served_requests(),
        report.aborted_requests(),
        report.rejected_requests(),
        report.availability.rerouted.len(),
        report.availability.failures.len(),
        report.availability.drains.len(),
        report.availability.joins.len(),
        report.totals.generated_tokens,
        report.fleet_throughput(),
        report.ttft().p50.as_secs(),
    )
}

fn assert_digest_matches(got: &str, want: &str) {
    let (gl, gf): (Vec<&str>, Vec<&str>) = got.split('|').partition(|f| !f.starts_with("t"));
    let (wl, wf): (Vec<&str>, Vec<&str>) = want.split('|').partition(|f| !f.starts_with("t"));
    assert_eq!(gl, wl, "digest counts diverged from the committed fixture");
    for (g, w) in gf.iter().zip(&wf) {
        let gv: f64 = g.split('=').nth(1).unwrap().parse().unwrap();
        let wv: f64 = w.split('=').nth(1).unwrap().parse().unwrap();
        close(gv, wv, g.split('=').next().unwrap(), got);
    }
}

/// Tentpole self-check: for every built-in router in both serving modes, the
/// indexed loop equals the scan loop bit-for-bit on the pinned churn
/// scenario, and both match the committed digest fixture.
///
/// `SELF_CHECK_REGEN=1` rewrites `tests/fixtures/self_check_digests.txt`
/// instead of asserting — commit the diff with the semantics change that
/// caused it.
#[test]
fn churn_scenario_matches_scan_loop_and_pinned_digests() {
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/self_check_digests.txt"
    );
    let regen = std::env::var_os("SELF_CHECK_REGEN").is_some();
    let pinned: Vec<String> = if regen {
        Vec::new()
    } else {
        std::fs::read_to_string(fixture_path)
            .expect("committed digest fixture (regen with SELF_CHECK_REGEN=1)")
            .lines()
            .map(str::to_owned)
            .collect()
    };
    let mut lines = Vec::new();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let label = format!("{name} [{}]", mode.label());
            let want = scan().run(&churn_spec(mode, router.clone())).unwrap();
            let got = indexed(2).run(&churn_spec(mode, router)).unwrap();
            assert_reports_identical(&want, &got, &label);
            let line = digest(&label, &got);
            if !regen {
                let want_line = pinned
                    .iter()
                    .find(|l| l.starts_with(&format!("{label}|")))
                    .unwrap_or_else(|| panic!("{label}: no pinned digest line"));
                assert_digest_matches(&line, want_line);
            }
            lines.push(line);
        }
    }
    if regen {
        std::fs::write(fixture_path, lines.join("\n") + "\n").unwrap();
    }
}

/// Sharded stepping is deterministic and thread-count-independent: 1, 2 and
/// 4 worker threads all reproduce the scan-loop report on a fleet large
/// enough that windows actually shard.
#[test]
fn sharded_stepping_matches_scan_at_every_thread_count() {
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let spec = |r: Arc<dyn Router>| {
                ClusterSpec::homogeneous(
                    SystemKind::MoeLightning,
                    WorkloadSpec::mtbench(),
                    &NodeSpec::t4_single(),
                    8,
                )
                .with_count(400)
                .with_mixed_gen_lens()
                .with_seed(11)
                .with_mode(mode)
                .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 6.0 })
                .with_router(r)
            };
            let want = scan().run(&spec(router.clone())).unwrap();
            for threads in [1, 2, 4] {
                let got = indexed(threads).run(&spec(router.clone())).unwrap();
                assert_reports_identical(
                    &want,
                    &got,
                    &format!("{name} [{mode}] threads={threads}"),
                );
            }
        }
    }
}

/// With an autoscaler installed the indexed loop degenerates to per-event
/// stepping so the scaler observes every completion batch — and still
/// matches the scan loop exactly, including the scale decisions.
#[test]
fn indexed_loop_matches_scan_with_an_autoscaler() {
    for mode in MODES {
        let spec = || {
            ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                2,
            )
            .with_count(300)
            .with_gen_len(32)
            .with_seed(11)
            .with_mode(mode)
            .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 3.0 })
            .with_timeline(FleetTimeline::new().with_provisioning_delay(secs(10.0)))
            .with_autoscaler(
                Arc::new(QueueDepthScaler::new(8.0, 1.0)),
                ScaleBounds::new(1, 6, secs(15.0)),
            )
        };
        let want = scan().run(&spec()).unwrap();
        let got = indexed(4).run(&spec()).unwrap();
        assert_reports_identical(&want, &got, &format!("autoscaled [{mode}]"));
        assert!(
            !want.availability.joins.is_empty() || !want.availability.drains.is_empty(),
            "[{mode}] the scenario must actually exercise the autoscaler"
        );
    }
}

/// Fleet-scaled arrivals stamp each request lazily at the then-current
/// serving count; the indexed loop's O(1) serving count must agree with the
/// scan loop at every stamping instant.
#[test]
fn indexed_loop_matches_scan_with_fleet_scaled_arrivals() {
    let spec = || {
        ClusterSpec::homogeneous(
            SystemKind::MoeLightning,
            WorkloadSpec::mtbench(),
            &NodeSpec::t4_single(),
            3,
        )
        .with_count(300)
        .with_gen_len(32)
        .with_seed(11)
        .with_mode(ServingMode::Continuous)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 0.8 })
        .with_fleet_scaled_arrivals()
        .with_timeline(
            FleetTimeline::new()
                .fail_at(secs(40.0), ReplicaId(2))
                .join_at(secs(70.0), ReplicaSpec::new(NodeSpec::t4_single()))
                .with_provisioning_delay(secs(5.0)),
        )
    };
    let want = scan().run(&spec()).unwrap();
    let got = indexed(2).run(&spec()).unwrap();
    assert_reports_identical(&want, &got, "fleet-scaled arrivals");
}

/// A heterogeneous fleet (different KV budgets per replica) exercises the
/// indexed dispatch's eligible-subset fallback; the chosen replicas must
/// still match the scan-loop filter scan.
#[test]
fn indexed_loop_matches_scan_on_heterogeneous_budgets() {
    for mode in MODES {
        let spec = || {
            ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(64, 16)),
                )
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(16, 4)),
                )
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(32, 8)),
                )
                .with_count(240)
                .with_mixed_gen_lens()
                .with_seed(11)
                .with_mode(mode)
                .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 1.5 })
        };
        let want = scan().run(&spec()).unwrap();
        let got = indexed(2).run(&spec()).unwrap();
        assert_reports_identical(&want, &got, &format!("heterogeneous [{mode}]"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the tentpole guarantee: over random seeds, fleet
    /// sizes, loads and serving modes, the indexed sharded loop and the
    /// linear scan loop produce identical reports.
    #[test]
    fn indexed_loop_matches_scan_on_random_scenarios(
        seed in 0u64..1000,
        replicas in 1usize..6,
        count in 50usize..250,
        rate_x10 in 5u64..40,
        mode_seed in 0u8..2,
        threads in 1usize..4,
    ) {
        let mode = if mode_seed == 0 {
            ServingMode::RoundToCompletion
        } else {
            ServingMode::Continuous
        };
        let spec = || {
            ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                replicas,
            )
            .with_count(count)
            .with_mixed_gen_lens()
            .with_seed(seed)
            .with_mode(mode)
            .with_arrivals(ArrivalProcess::Poisson {
                rate_per_sec: rate_x10 as f64 / 10.0,
            })
        };
        let want = scan().run(&spec()).unwrap();
        let got = indexed(threads).run(&spec()).unwrap();
        prop_assert_eq!(&want, &got);
    }
}
