//! Loop-equivalence suite for the fleet-scale hot path: the indexed fleet
//! loop (event heap, incremental router indexes, sharded replica stepping)
//! must reproduce the reference scan loop's [`ClusterReport`] *exactly* —
//! same routing decisions, same completion instants, same availability
//! accounting — on pinned seeds, under churn, in both serving modes, for
//! every built-in router, and at every shard thread count.

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterReport, ClusterSpec, EvalSetting, FleetTimeline,
    NodeSpec, Policy, QueueDepthScaler, ReplicaId, ReplicaSpec, Router, ScaleBounds, Seconds,
    ServingMode, SystemKind,
};
use moe_workload::{ArrivalProcess, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn reference() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model()).with_reference_loop()
}

fn indexed(threads: usize) -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model()).with_shard_threads(threads)
}

fn secs(s: f64) -> Seconds {
    Seconds::from_secs(s)
}

/// The pinned seed-11 churn scenario: a 4-replica T4 fleet under Poisson
/// load with a mid-run failure, a delayed join and a drain — every control
/// transition the loop handles, in one timeline.
fn churn_spec(mode: ServingMode, router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_count(400)
    .with_mixed_gen_lens()
    .with_seed(11)
    .with_mode(mode)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
    .with_timeline(
        FleetTimeline::new()
            .fail_at(secs(50.0), ReplicaId(1))
            .join_at(secs(60.0), ReplicaSpec::new(NodeSpec::t4_single()))
            .drain_at(secs(90.0), ReplicaId(0))
            .with_provisioning_delay(secs(20.0)),
    )
}

fn assert_reports_identical(a: &ClusterReport, b: &ClusterReport, label: &str) {
    // One field-by-field pass first so a mismatch names the diverging part
    // instead of dumping two full reports.
    assert_eq!(
        a.availability, b.availability,
        "{label}: availability accounting diverged"
    );
    assert_eq!(a.totals, b.totals, "{label}: fleet totals diverged");
    assert_eq!(
        a.replicas.len(),
        b.replicas.len(),
        "{label}: replica count diverged"
    );
    for (ra, rb) in a.replicas.iter().zip(&b.replicas) {
        assert_eq!(
            ra, rb,
            "{label}: replica {:?} diverged",
            ra.kv_budget_per_micro_batch
        );
    }
    assert_eq!(a, b, "{label}: reports diverged");
}

/// Tentpole equivalence: for every built-in router in both serving modes,
/// the indexed loop's report equals the reference scan loop's bit-for-bit on
/// the pinned churn scenario.
#[test]
fn indexed_loop_matches_reference_for_every_router_under_churn() {
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let want = reference().run(&churn_spec(mode, router.clone())).unwrap();
            let got = indexed(1).run(&churn_spec(mode, router)).unwrap();
            assert_reports_identical(&want, &got, &format!("{name} [{mode}]"));
        }
    }
}

/// Sharded stepping is deterministic and thread-count-independent: 1, 2 and
/// 4 worker threads all reproduce the reference report on a fleet large
/// enough that windows actually shard.
#[test]
fn sharded_stepping_matches_reference_at_every_thread_count() {
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let spec = |r: Arc<dyn Router>| {
                ClusterSpec::homogeneous(
                    SystemKind::MoeLightning,
                    WorkloadSpec::mtbench(),
                    &NodeSpec::t4_single(),
                    8,
                )
                .with_count(400)
                .with_mixed_gen_lens()
                .with_seed(11)
                .with_mode(mode)
                .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 6.0 })
                .with_router(r)
            };
            let want = reference().run(&spec(router.clone())).unwrap();
            for threads in [1, 2, 4] {
                let got = indexed(threads).run(&spec(router.clone())).unwrap();
                assert_reports_identical(
                    &want,
                    &got,
                    &format!("{name} [{mode}] threads={threads}"),
                );
            }
        }
    }
}

/// With an autoscaler installed the indexed loop degenerates to per-event
/// stepping so the scaler observes every completion batch — and still
/// matches the reference loop exactly, including the scale decisions.
#[test]
fn indexed_loop_matches_reference_with_an_autoscaler() {
    for mode in MODES {
        let spec = || {
            ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                2,
            )
            .with_count(300)
            .with_gen_len(32)
            .with_seed(11)
            .with_mode(mode)
            .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 3.0 })
            .with_timeline(FleetTimeline::new().with_provisioning_delay(secs(10.0)))
            .with_autoscaler(
                Arc::new(QueueDepthScaler::new(8.0, 1.0)),
                ScaleBounds::new(1, 6, secs(15.0)),
            )
        };
        let want = reference().run(&spec()).unwrap();
        let got = indexed(4).run(&spec()).unwrap();
        assert_reports_identical(&want, &got, &format!("autoscaled [{mode}]"));
        assert!(
            !want.availability.joins.is_empty() || !want.availability.drains.is_empty(),
            "[{mode}] the scenario must actually exercise the autoscaler"
        );
    }
}

/// Fleet-scaled arrivals stamp each request lazily at the then-current
/// serving count; the indexed loop's O(1) serving count must agree with the
/// reference scan at every stamping instant.
#[test]
fn indexed_loop_matches_reference_with_fleet_scaled_arrivals() {
    let spec = || {
        ClusterSpec::homogeneous(
            SystemKind::MoeLightning,
            WorkloadSpec::mtbench(),
            &NodeSpec::t4_single(),
            3,
        )
        .with_count(300)
        .with_gen_len(32)
        .with_seed(11)
        .with_mode(ServingMode::Continuous)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 0.8 })
        .with_fleet_scaled_arrivals()
        .with_timeline(
            FleetTimeline::new()
                .fail_at(secs(40.0), ReplicaId(2))
                .join_at(secs(70.0), ReplicaSpec::new(NodeSpec::t4_single()))
                .with_provisioning_delay(secs(5.0)),
        )
    };
    let want = reference().run(&spec()).unwrap();
    let got = indexed(2).run(&spec()).unwrap();
    assert_reports_identical(&want, &got, "fleet-scaled arrivals");
}

/// A heterogeneous fleet (different KV budgets per replica) exercises the
/// indexed dispatch's eligible-subset fallback; the chosen replicas must
/// still match the reference filter scan.
#[test]
fn indexed_loop_matches_reference_on_heterogeneous_budgets() {
    for mode in MODES {
        let spec = || {
            ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(64, 16)),
                )
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(16, 4)),
                )
                .with_replica(
                    ReplicaSpec::new(NodeSpec::t4_single())
                        .with_policy(Policy::offload_default(32, 8)),
                )
                .with_count(240)
                .with_mixed_gen_lens()
                .with_seed(11)
                .with_mode(mode)
                .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 1.5 })
        };
        let want = reference().run(&spec()).unwrap();
        let got = indexed(2).run(&spec()).unwrap();
        assert_reports_identical(&want, &got, &format!("heterogeneous [{mode}]"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property form of the tentpole guarantee: over random seeds, fleet
    /// sizes, loads and serving modes, the indexed sharded loop and the
    /// reference scan loop produce identical reports.
    #[test]
    fn indexed_loop_matches_reference_on_random_scenarios(
        seed in 0u64..1000,
        replicas in 1usize..6,
        count in 50usize..250,
        rate_x10 in 5u64..40,
        mode_seed in 0u8..2,
        threads in 1usize..4,
    ) {
        let mode = if mode_seed == 0 {
            ServingMode::RoundToCompletion
        } else {
            ServingMode::Continuous
        };
        let spec = || {
            ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                replicas,
            )
            .with_count(count)
            .with_mixed_gen_lens()
            .with_seed(seed)
            .with_mode(mode)
            .with_arrivals(ArrivalProcess::Poisson {
                rate_per_sec: rate_x10 as f64 / 10.0,
            })
        };
        let want = reference().run(&spec()).unwrap();
        let got = indexed(threads).run(&spec()).unwrap();
        prop_assert_eq!(&want, &got);
    }
}
