//! Invariant and comparison tests for step-level continuous batching (ISSUE 2):
//! exactly-once accounting under online arrivals, the KV budget at every
//! scheduling event, queue-aware TTFT, and the head-of-line-blocking win of
//! continuous mode over round-to-completion on mixed-`gen_len` queues.

use moe_lightning::{
    EvalSetting, ServingMode, ServingReport, ServingSession, SystemEvaluator, SystemKind,
};
use moe_workload::{ArrivalProcess, Request, WorkloadSpec};

fn evaluator() -> SystemEvaluator {
    SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model())
}

/// A mixed-`gen_len` MTBench queue: the workload continuous batching is designed
/// for, where short requests finish early and free KV capacity mid-flight.
fn mixed_gen_queue(count: usize, seed: u64) -> Vec<Request> {
    WorkloadSpec::mtbench().sample_requests_mixed_gen(count, seed)
}

fn serve(mode: ServingMode, queue: Vec<Request>) -> ServingReport {
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 128)
        .unwrap()
        .with_mode(mode);
    session.serve(queue).unwrap()
}

fn assert_exactly_once(report: &ServingReport, count: usize) {
    let mut ids: Vec<u64> = report
        .latencies
        .iter()
        .map(|l| l.request.id)
        .chain(report.aborted.iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..count as u64).collect::<Vec<u64>>(),
        "every request must be served or aborted exactly once"
    );
}

#[test]
fn every_request_served_or_aborted_exactly_once_under_poisson_arrivals() {
    let mut queue = mixed_gen_queue(800, 42);
    ArrivalProcess::Poisson { rate_per_sec: 0.5 }.stamp(&mut queue, 7);
    for mode in [ServingMode::RoundToCompletion, ServingMode::Continuous] {
        let report = serve(mode, queue.clone());
        assert_exactly_once(&report, 800);
        assert!(report.aborted.is_empty(), "mtbench requests all fit S1");
    }
}

#[test]
fn every_request_served_or_aborted_exactly_once_under_burst_arrivals() {
    let mut queue = mixed_gen_queue(600, 5);
    ArrivalProcess::Burst {
        size: 150,
        period_secs: 400.0,
    }
    .stamp(&mut queue, 3);
    let report = serve(ServingMode::Continuous, queue);
    assert_exactly_once(&report, 600);
}

#[test]
fn kv_reservation_never_exceeds_budget_at_any_scheduling_event() {
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    for mode in [ServingMode::RoundToCompletion, ServingMode::Continuous] {
        let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 128)
            .unwrap()
            .with_mode(mode);
        let budget = session.batching_config().cache_tokens_per_micro_batch;
        let report = session.serve(mixed_gen_queue(1000, 23)).unwrap();
        assert!(!report.rounds.is_empty());
        for round in &report.rounds {
            for (i, &reserved) in round.kv_reserved.iter().enumerate() {
                assert!(
                    reserved <= budget,
                    "{mode}: event {} micro-batch {i} reserves {reserved} > budget {budget}",
                    round.round
                );
            }
        }
        // KV reservations only change at admission events (growth) and at
        // completions (release), so per-event snapshots cover every step.
    }
}

#[test]
fn kv_budget_holds_at_every_event_under_online_arrivals() {
    // The offline KV invariant, repeated under Poisson arrivals: mid-flight
    // admissions on the engine-backed session must respect the budget at
    // every admission wave too, not just when the whole queue is present at
    // time zero.
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let mut queue = mixed_gen_queue(600, 29);
    ArrivalProcess::Poisson { rate_per_sec: 2.5 }.stamp(&mut queue, 17);
    for mode in [ServingMode::RoundToCompletion, ServingMode::Continuous] {
        let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 128)
            .unwrap()
            .with_mode(mode);
        let budget = session.batching_config().cache_tokens_per_micro_batch;
        let report = session.serve(queue.clone()).unwrap();
        assert_exactly_once(&report, 600);
        for round in &report.rounds {
            for (i, &reserved) in round.kv_reserved.iter().enumerate() {
                assert!(
                    reserved <= budget,
                    "{mode}: event {} micro-batch {i} reserves {reserved} > budget {budget}",
                    round.round
                );
            }
        }
    }
}

#[test]
fn oversized_requests_abort_exactly_once_under_online_arrivals() {
    // Permanently oversized requests are classified up front even when they
    // would only have arrived mid-run; the feasible remainder is unaffected.
    let eval = evaluator();
    let spec = WorkloadSpec::mtbench();
    let session = ServingSession::new(&eval, SystemKind::MoeLightning, &spec, 64)
        .unwrap()
        .with_mode(ServingMode::Continuous);
    let mut queue = mixed_gen_queue(200, 41);
    let next_id = queue.len() as u64;
    queue.push(Request::new(next_id, 1_000_000, 64));
    queue.push(Request::new(next_id + 1, 1_000_000, 64));
    ArrivalProcess::Poisson { rate_per_sec: 3.0 }.stamp(&mut queue, 19);
    let report = session.serve(queue).unwrap();
    assert_exactly_once(&report, 202);
    let aborted_ids: Vec<u64> = report.aborted.iter().map(|r| r.id).collect();
    assert_eq!(aborted_ids, vec![next_id, next_id + 1]);
}

#[test]
fn continuous_batching_beats_round_to_completion_on_mixed_gen_lens() {
    // The acceptance comparison: on a variable-gen_len MTBench queue, releasing
    // slots at completion and backfilling mid-flight must strictly beat holding
    // every request for the round's longest gen_len.
    let queue = mixed_gen_queue(1000, 11);
    let rtc = serve(ServingMode::RoundToCompletion, queue.clone());
    let cont = serve(ServingMode::Continuous, queue);
    assert!(rtc.aborted.is_empty() && cont.aborted.is_empty());
    assert_eq!(rtc.served_requests(), cont.served_requests());

    let rtc_completion = rtc.completion();
    let cont_completion = cont.completion();
    assert!(
        cont_completion.mean < rtc_completion.mean,
        "continuous mean completion ({}) must strictly beat round-to-completion ({})",
        cont_completion.mean,
        rtc_completion.mean
    );
    assert!(
        cont.ttft().p99 <= rtc.ttft().p99,
        "continuous p99 TTFT ({}) must not exceed round-to-completion ({})",
        cont.ttft().p99,
        rtc.ttft().p99
    );
    assert!(
        cont.generation_throughput() > rtc.generation_throughput(),
        "freed slots must translate into throughput: {} vs {} tok/s",
        cont.generation_throughput(),
        rtc.generation_throughput()
    );
}

#[test]
fn queue_aware_ttft_is_measured_from_arrival_not_time_zero() {
    // Arrivals spaced far apart (1000 s ≫ the time to serve one request): the
    // system drains each request before the next arrives, so every TTFT stays
    // near the single-request service time instead of growing with the arrival
    // offset (which reaches 49,000 s for the last request).
    let mut queue = WorkloadSpec::mtbench().sample_requests(50, 32, 9);
    ArrivalProcess::Burst {
        size: 1,
        period_secs: 1000.0,
    }
    .stamp(&mut queue, 0);
    let last_arrival = queue.last().unwrap().arrival;
    for mode in [ServingMode::RoundToCompletion, ServingMode::Continuous] {
        let report = serve(mode, queue.clone());
        assert_eq!(report.served_requests(), 50);
        let ttft = report.ttft();
        assert!(
            ttft.max < last_arrival,
            "{mode}: TTFT must not accumulate arrival offsets: max {} vs last arrival {}",
            ttft.max,
            last_arrival
        );
        assert!(
            ttft.max.as_secs() < 10.0 * ttft.p50.as_secs() + 1e-9,
            "{mode}: an unloaded system keeps TTFT flat across arrivals"
        );
    }
}

#[test]
fn continuous_mode_total_concurrency_and_waves_behave() {
    // Under load (all requests at t=0) continuous mode fills up to the policy
    // batch, then backfills in further waves as requests complete. A small
    // explicit policy (N=60, μ=20) keeps multiple waves guaranteed.
    let eval = evaluator();
    let policy = moe_lightning::Policy::offload_default(60, 20);
    let shape = moe_lightning::WorkloadShape::new(77, 256);
    let session = ServingSession::with_policy(&eval, SystemKind::MoeLightning, policy, shape)
        .with_mode(ServingMode::Continuous);
    let report = session.serve(mixed_gen_queue(300, 31)).unwrap();
    assert_exactly_once(&report, 300);
    assert!(
        report.rounds.len() > 2,
        "300 requests over a 60-batch must need several admission waves, got {}",
        report.rounds.len()
    );
    for wave in &report.rounds {
        assert!(wave.occupancy.iter().sum::<u64>() <= 60);
        assert!(wave.occupancy.iter().all(|&o| o <= 20));
    }
    // The first wave fills the batch to its binding constraint — for this
    // long-tailed queue the KV budget binds just before the 60 request slots —
    // and at least one later wave is a genuine mid-flight backfill (admitting
    // fewer requests than are in flight after the admission).
    let first: u64 = report.rounds[0].occupancy.iter().sum();
    assert!(
        (50..=60).contains(&first),
        "first wave must fill most of the batch, got {first}"
    );
    assert!(report.rounds.iter().skip(1).any(|w| {
        let in_flight: u64 = w.occupancy.iter().sum();
        in_flight > 0 && w.report.requests < in_flight
    }));
}
