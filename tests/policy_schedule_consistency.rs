//! Integration tests for the analytic performance model vs the discrete-event
//! simulation of the schedules, and for the policy optimizer feeding the schedule
//! builder — the two halves of the system must agree on what they are modeling.

use moe_hardware::NodeSpec;
use moe_model::MoeModelConfig;
use moe_policy::{CostModel, Policy, PolicyOptimizer, SearchSpace, WorkloadShape};
use moe_schedule::{DecodeScheduleBuilder, ScheduleKind};
use moe_sim::{simulate, Lane, TaskKind};

#[test]
fn simulated_cgopipe_step_is_close_to_the_analytic_estimate() {
    // Eq. 12 models the per-layer latency as the max of the four resource times; the
    // simulated pipeline adds prologue/epilogue effects but must stay within a small
    // factor of the analytic estimate (otherwise one of the two is wrong).
    let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
    let policy = Policy::offload_default(256, 32);
    let workload = WorkloadShape::new(77, 128);
    let layers = 4u32;

    let analytic = cost
        .layer_decode_latency(&policy, &workload)
        .total
        .as_secs()
        * f64::from(layers);
    let simulated = DecodeScheduleBuilder::new(&cost, policy, workload)
        .with_layers(layers)
        .decode_step_makespan(ScheduleKind::CgoPipe)
        .unwrap()
        .as_secs();
    let ratio = simulated / analytic;
    assert!(
        (0.8..1.8).contains(&ratio),
        "simulated {simulated:.4}s vs analytic {analytic:.4}s (ratio {ratio:.2})"
    );
}

#[test]
fn optimizer_policy_runs_through_every_schedule_without_errors() {
    let node = NodeSpec::t4_single();
    let model = MoeModelConfig::mixtral_8x7b();
    let workload = WorkloadShape::new(242, 50);
    let optimizer =
        PolicyOptimizer::new(node.clone(), model.clone()).with_search_space(SearchSpace::coarse());
    let policy = optimizer.search(&workload).unwrap().policy;
    let cost = CostModel::new(node, model);
    let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(3);
    for kind in ScheduleKind::all() {
        let graph = builder.build(kind).unwrap();
        let result = simulate(&graph).unwrap();
        assert_eq!(result.timeline.len(), graph.len());
        assert!(result.makespan.as_secs() > 0.0);
    }
}

#[test]
fn cgopipe_weight_traffic_matches_the_streamed_layer_bytes() {
    // The total weight-transfer time on the H2D lane must equal the time to stream
    // (layers − the prologue-free remainder) × (1 − r_w) of each layer's weights.
    let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
    let mut policy = Policy::offload_default(128, 32);
    policy.weights_gpu_ratio = 0.25;
    let workload = WorkloadShape::new(77, 64);
    let layers = 3u32;
    let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(layers);
    let graph = builder.build(ScheduleKind::CgoPipe).unwrap();
    let result = simulate(&graph).unwrap();

    let weight_time = result.kind_time(TaskKind::WeightTransfer).as_secs();
    let per_layer = cost
        .weight_transfer(cost.streamed_layer_bytes(&policy))
        .as_secs();
    let expected = per_layer * f64::from(layers);
    let rel = (weight_time - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "weight transfer time {weight_time:.4}s vs expected {expected:.4}s"
    );
}

#[test]
fn gpu_is_busier_under_cgopipe_than_under_flexgen_c() {
    let cost = CostModel::new(NodeSpec::t4_single(), MoeModelConfig::mixtral_8x7b());
    let policy = Policy::offload_default(256, 32);
    let workload = WorkloadShape::new(418, 128);
    let builder = DecodeScheduleBuilder::new(&cost, policy, workload).with_layers(4);
    let utilization = |kind| {
        let r = simulate(&builder.build(kind).unwrap()).unwrap();
        r.lane(Lane::GpuCompute).utilization
    };
    let cgo = utilization(ScheduleKind::CgoPipe);
    let s3 = utilization(ScheduleKind::FlexGenCpuAttention);
    assert!(
        cgo >= s3 - 1e-9,
        "CGOPipe GPU utilization {cgo:.3} must not be below FlexGen(c) {s3:.3}"
    );
}

#[test]
fn attention_placement_decision_matches_the_hrm_analysis() {
    // The optimizer's A_g choice must agree with the HRM turning-point analysis: on
    // the memory-constrained T4/L4 nodes the attention intensity (≈4 FLOPs/byte for
    // f16 GQA) is far below P1, so attention belongs on the CPU.
    use moe_hrm::HierarchicalRoofline;
    use moe_model::LayerOps;
    for node in [NodeSpec::t4_single(), NodeSpec::l4_single()] {
        let hrm = HierarchicalRoofline::from_node(&node);
        let p1 = hrm.turning_point_p1(hrm.gpu(), hrm.cpu()).unwrap();
        let attention_intensity = LayerOps::new(MoeModelConfig::mixtral_8x7b())
            .attention_core_decode(64, 512)
            .operational_intensity();
        assert!(attention_intensity < p1);

        let optimizer = PolicyOptimizer::new(node, MoeModelConfig::mixtral_8x7b());
        let best = optimizer
            .search(&WorkloadShape::new(77, 128))
            .unwrap()
            .policy;
        assert!(
            !best.attention_on_gpu,
            "HRM analysis and optimizer must agree"
        );
    }
}
