//! Record→replay determinism gate for the ISSUE 8 trace subsystem.
//!
//! Records a run's realized arrival stream through [`TraceRecorder`],
//! round-trips it through the `MOETRACE` text format, replays it via
//! `with_queue`, and requires the replay to reproduce the originating
//! [`ClusterReport`] / [`ServingReport`] field-by-field — across both
//! dispatch loops (indexed and scan), multiple routers (including the
//! rng-consuming power-of-two-choices), fleet-scaled lazily-stamped
//! arrivals, and the single-node path.

use moe_lightning::{
    ClusterEvaluator, ClusterSpec, EvalSetting, FleetTimeline, LeastOutstandingTokens,
    PowerOfTwoChoices, ReplicaId, ReplicaRole, ReplicaSpec, Router, Seconds, ServeSpec,
    ServingMode, StickySession, SystemEvaluator, SystemKind,
};
use moe_trace::{OutcomeKind, OutcomeLog, OutcomeRecorder, Trace, TraceRecorder};
use moe_workload::{ArrivalProcess, WorkloadSpec};
use std::sync::Arc;

const COUNT: usize = 96;
const SEED: u64 = 17;

fn base_spec(router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &EvalSetting::S1.node(),
        3,
    )
    .with_count(COUNT)
    .with_mixed_gen_lens()
    .with_seed(SEED)
    .with_mode(ServingMode::Continuous)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
}

fn routers() -> Vec<Arc<dyn Router>> {
    vec![
        Arc::new(LeastOutstandingTokens),
        Arc::new(PowerOfTwoChoices),
    ]
}

#[test]
fn replay_reproduces_the_cluster_report_across_loops_and_routers() {
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());
    let scan = evaluator.clone().with_scan_loop();
    for router in routers() {
        for (label, runner) in [("indexed", &evaluator), ("scan", &scan)] {
            let recorder = Arc::new(TraceRecorder::new());
            let spec = base_spec(Arc::clone(&router)).with_tap(Arc::clone(&recorder) as _);
            let original = runner.run(&spec).unwrap();
            assert_eq!(
                recorder.len(),
                original.total_requests(),
                "{label}/{}: the tap must see the whole offered load",
                router.name()
            );

            // Round-trip the recorded stream through the text format before
            // replaying: the replay consumes exactly what a file would hold.
            let trace = Trace::parse(&recorder.trace().render()).unwrap();
            let replay_spec = trace.replay_into_cluster(base_spec(Arc::clone(&router)));
            let replayed = runner.run(&replay_spec).unwrap();
            assert_eq!(
                replayed,
                original,
                "{label}/{}: replay must reproduce the originating report",
                router.name()
            );

            // And replay is deterministic with itself.
            let again = runner.run(&replay_spec).unwrap();
            assert_eq!(again, replayed);
        }
    }
}

#[test]
fn replay_reproduces_fleet_scaled_lazily_stamped_arrivals() {
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());
    let recorder = Arc::new(TraceRecorder::new());
    let spec = base_spec(Arc::new(LeastOutstandingTokens))
        .with_fleet_scaled_arrivals()
        .with_tap(Arc::clone(&recorder) as _);
    let original = evaluator.run(&spec).unwrap();
    assert_eq!(recorder.len(), original.total_requests());
    // The tap saw the stamps the arrival clock assigned at dispatch time.
    let trace = recorder.trace();
    assert!(trace.duration().as_secs() > 0.0);

    // Replaying an explicit queue must disable lazy stamping even though the
    // spec still asks for it — the stream is already realized.
    let replay_spec = trace.replay_into_cluster(
        base_spec(Arc::new(LeastOutstandingTokens)).with_fleet_scaled_arrivals(),
    );
    let replayed = evaluator.run(&replay_spec).unwrap();
    assert_eq!(replayed, original);
}

/// Record→replay stays bit-for-bit with the ISSUE 9 serving features on:
/// sticky-session routing, per-replica prefix caches, multi-turn sessions
/// and a disaggregated prefill/decode split. The session ids ride the trace
/// format, and each run gets a fresh router instance (session maps are
/// stateful), so the replay reconstructs the same placements.
#[test]
fn replay_reproduces_disagg_fleets_with_sticky_sessions_and_prefix_caches() {
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());
    let queue: Vec<_> = WorkloadSpec::mtbench()
        .synthesize_queue(
            COUNT,
            moe_workload::GenLens::Uniform(64),
            SEED,
            false,
            &ArrivalProcess::Poisson { rate_per_sec: 2.0 },
        )
        .into_iter()
        .map(|r| {
            let session = r.id / 6;
            r.with_session(session)
        })
        .collect();
    let spec = |router: Arc<dyn Router>| {
        let node = EvalSetting::S1.node();
        ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
            .with_replica(ReplicaSpec::new(node.clone()).with_role(ReplicaRole::Prefill))
            .with_replica(ReplicaSpec::new(node.clone()).with_role(ReplicaRole::Decode))
            .with_replica(ReplicaSpec::new(node).with_role(ReplicaRole::Decode))
            .with_seed(SEED)
            .with_mode(ServingMode::Continuous)
            .with_prefix_cache(64 * 1024)
            .with_router(router)
    };
    let sticky =
        || -> Arc<dyn Router> { Arc::new(StickySession::new(Arc::new(LeastOutstandingTokens))) };

    let recorder = Arc::new(TraceRecorder::new());
    let original = evaluator
        .run(
            &spec(sticky())
                .with_queue(queue.clone())
                .with_tap(Arc::clone(&recorder) as _),
        )
        .unwrap();
    assert_eq!(recorder.len(), original.total_requests());

    let trace = Trace::parse(&recorder.trace().render()).unwrap();
    assert_eq!(
        trace.stats().sessions,
        COUNT.div_ceil(6),
        "session ids must survive the text format"
    );
    let replayed = evaluator
        .run(&trace.replay_into_cluster(spec(sticky())))
        .unwrap();
    assert_eq!(
        replayed, original,
        "replay must reproduce the disagg + cache + sticky report bit-for-bit"
    );
    assert!(
        replayed
            .replicas
            .iter()
            .map(|r| r.cache.expect("caches configured").hits)
            .sum::<u64>()
            > 0,
        "the multi-turn queue must actually exercise the caches"
    );
}

/// Outcome sidecar roundtrip: record the arrival stream *and* every
/// request's terminal verdict on a churny fleet run, round-trip both through
/// their text formats, replay the trace, and require the replay to produce
/// the identical outcome log. The log must also reconcile exactly with the
/// report's served/rejected/aborted accounting.
#[test]
fn replay_reproduces_the_outcome_sidecar_under_churn() {
    let evaluator = ClusterEvaluator::new(EvalSetting::S1.model());
    let spec = || {
        base_spec(Arc::new(LeastOutstandingTokens))
            .with_count(200)
            .with_timeline(
                FleetTimeline::new()
                    .fail_at(Seconds::from_secs(30.0), ReplicaId(1))
                    .drain_at(Seconds::from_secs(60.0), ReplicaId(0)),
            )
    };

    let arrivals = Arc::new(TraceRecorder::new());
    let outcomes = Arc::new(OutcomeRecorder::new());
    let original = evaluator
        .run(
            &spec()
                .with_tap(Arc::clone(&arrivals) as _)
                .with_telemetry(Arc::clone(&outcomes) as _),
        )
        .unwrap();

    // One terminal verdict per offered request, reconciling with the report.
    let log = OutcomeLog::parse(&outcomes.log().render()).unwrap();
    assert_eq!(log.len(), original.total_requests());
    assert_eq!(
        log.count(OutcomeKind::Completed),
        original.served_requests()
    );
    assert_eq!(
        log.count(OutcomeKind::Rejected),
        original.rejected_requests()
    );
    assert_eq!(log.count(OutcomeKind::Aborted), original.aborted_requests());
    assert!(
        original.availability.failures.len() == 1,
        "the timeline's failure must land for the scenario to mean anything"
    );

    // Replaying the recorded trace reproduces the sidecar verdict-for-verdict.
    let trace = Trace::parse(&arrivals.trace().render()).unwrap();
    let replay_outcomes = Arc::new(OutcomeRecorder::new());
    let replayed = evaluator
        .run(
            &trace
                .replay_into_cluster(spec())
                .with_telemetry(Arc::clone(&replay_outcomes) as _),
        )
        .unwrap();
    assert_eq!(replayed, original);
    assert_eq!(replay_outcomes.log(), log);
}

#[test]
fn replay_reproduces_the_single_node_serving_report() {
    let setting = EvalSetting::S1;
    let evaluator = SystemEvaluator::new(setting.node(), setting.model());
    let recorder = Arc::new(TraceRecorder::new());
    let spec = ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
        .with_count(COUNT)
        .with_mixed_gen_lens()
        .with_seed(SEED)
        .with_mode(ServingMode::Continuous)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 3.0 })
        .with_tap(Arc::clone(&recorder) as _);
    let original = evaluator.run(&spec.clone()).unwrap();
    assert_eq!(recorder.len(), COUNT);

    let trace = Trace::parse(&recorder.trace().render()).unwrap();
    let replay_spec = trace.replay_into_serve(
        ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
            .with_mixed_gen_lens()
            .with_seed(SEED)
            .with_mode(ServingMode::Continuous),
    );
    let replayed = evaluator.run(&replay_spec).unwrap();
    assert_eq!(replayed, original);
}
