//! Cross-crate integration tests: the headline end-to-end claims of the paper,
//! evaluated through the full pipeline (policy search → schedule construction →
//! discrete-event simulation → throughput accounting).

use moe_lightning::{EvalSetting, SystemEvaluator, SystemKind};
use moe_workload::WorkloadSpec;

#[test]
fn moe_lightning_wins_on_s1_and_s2_for_every_generation_length() {
    // Fig. 7 (left half): MoE-Lightning(p) outperforms FlexGen, FlexGen(c) and
    // DeepSpeed for every generation length on both single-GPU settings.
    for setting in [EvalSetting::S1, EvalSetting::S2] {
        let evaluator = SystemEvaluator::new(setting.node(), setting.model());
        let spec = WorkloadSpec::mtbench();
        for gen in [32u64, 128] {
            let ml = evaluator
                .evaluate(SystemKind::MoeLightningPadded, &spec, gen)
                .expect("MoE-Lightning(p) feasible");
            for baseline in [
                SystemKind::FlexGen,
                SystemKind::FlexGenCpuAttention,
                SystemKind::DeepSpeedZero,
            ] {
                let other = evaluator
                    .evaluate(baseline, &spec, gen)
                    .expect("baseline feasible");
                assert!(
                    ml.throughput > other.throughput,
                    "{setting} gen={gen}: MoE-Lightning(p) {:.1} must beat {} {:.1}",
                    ml.throughput,
                    baseline,
                    other.throughput
                );
            }
        }
    }
}

#[test]
fn helm_tasks_follow_the_table_4_ordering() {
    // Tab. 4: MoE-Lightning(p) > FlexGen > FlexGen(c) and DeepSpeed uses a single
    // micro-batch, on both HELM workloads under S1.
    let setting = EvalSetting::S1;
    let evaluator = SystemEvaluator::new(setting.node(), setting.model());
    for spec in [
        WorkloadSpec::synthetic_reasoning(),
        WorkloadSpec::summarization(),
    ] {
        let gen = spec.default_gen_lens[0];
        let ml = evaluator
            .evaluate(SystemKind::MoeLightningPadded, &spec, gen)
            .unwrap();
        let flexgen = evaluator.evaluate(SystemKind::FlexGen, &spec, gen).unwrap();
        let deepspeed = evaluator
            .evaluate(SystemKind::DeepSpeedZero, &spec, gen)
            .unwrap();
        assert!(
            ml.throughput > flexgen.throughput,
            "{}: MoE-Lightning(p) {:.2} vs FlexGen {:.2}",
            spec.name,
            ml.throughput,
            flexgen.throughput
        );
        assert!(ml.throughput > deepspeed.throughput);
        assert_eq!(
            deepspeed.policy.num_micro_batches(),
            1,
            "DeepSpeed runs one micro-batch"
        );
    }
}

#[test]
fn summarization_prompts_force_smaller_micro_batches_than_mtbench() {
    // The 2k-token summarization prompts raise GPU peak memory during prefill, which
    // caps the feasible micro-batch size (§5.2 "Prompt Length").
    let setting = EvalSetting::S1;
    let evaluator = SystemEvaluator::new(setting.node(), setting.model());
    let mtbench = evaluator
        .evaluate(SystemKind::MoeLightningPadded, &WorkloadSpec::mtbench(), 64)
        .unwrap();
    let summarization = evaluator
        .evaluate(
            SystemKind::MoeLightningPadded,
            &WorkloadSpec::summarization(),
            64,
        )
        .unwrap();
    assert!(
        summarization.policy.micro_batch_size < mtbench.policy.micro_batch_size,
        "summarization μ = {} should be below MTBench μ = {}",
        summarization.policy.micro_batch_size,
        mtbench.policy.micro_batch_size
    );
    assert!(summarization.throughput < mtbench.throughput);
}

#[test]
fn tensor_parallelism_raises_the_throughput_ceiling() {
    // Fig. 7/8: doubling the GPUs (S6→S7 for Mixtral 8x22B, S8→S9 for DBRX) gives a
    // clearly super-proportional-to-nothing improvement; we check at least 1.5x.
    let spec = WorkloadSpec::mtbench();
    for (small, large) in [
        (EvalSetting::S6, EvalSetting::S7),
        (EvalSetting::S8, EvalSetting::S9),
    ] {
        let a = SystemEvaluator::new(small.node(), small.model())
            .evaluate(SystemKind::MoeLightningPadded, &spec, 64)
            .unwrap();
        let b = SystemEvaluator::new(large.node(), large.model())
            .evaluate(SystemKind::MoeLightningPadded, &spec, 64)
            .unwrap();
        assert!(
            b.throughput > 1.5 * a.throughput,
            "{large} ({:.2}) should be well above {small} ({:.2})",
            b.throughput,
            a.throughput
        );
    }
}

#[test]
fn more_cpu_memory_never_reduces_moe_lightning_throughput() {
    // Fig. 1: the throughput curve is non-decreasing in available host memory.
    use moe_hardware::{ByteSize, NodeSpec};
    use moe_lightning::MoeModelConfig;
    let spec = WorkloadSpec::mtbench();
    let mut last = 0.0f64;
    for cpu_gib in [112.0, 160.0, 224.0] {
        let node = NodeSpec::t4_single().with_cpu_memory(ByteSize::from_gib(cpu_gib));
        let evaluator = SystemEvaluator::new(node, MoeModelConfig::mixtral_8x7b());
        let t = evaluator
            .evaluate(SystemKind::MoeLightningPadded, &spec, 128)
            .map(|r| r.throughput)
            .unwrap_or(0.0);
        assert!(
            t >= last * 0.999,
            "throughput dropped from {last:.2} to {t:.2} at {cpu_gib} GiB"
        );
        last = t;
    }
    assert!(last > 0.0);
}
