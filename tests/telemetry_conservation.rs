//! Telemetry conservation suite (ISSUE 10): the recording sink's counters
//! must reconcile *exactly* with the `ClusterReport` across routers ×
//! serving modes × churn, the event stream must carry exactly one terminal
//! verdict per request, and attaching a sink — recording or no-op — must
//! leave the report bit-identical to the unattached run (telemetry is
//! emitted on the driver thread and never perturbs the simulation).

use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterSpec, EvalSetting, FleetTimeline,
    LeastOutstandingTokens, NodeSpec, Policy, Recorder, ReplicaId, ReplicaRole, ReplicaSpec,
    Router, Seconds, ServeSpec, ServingMode, SloAdmission, SloSpec, StickySession, SystemEvaluator,
    SystemKind, TelemetryEvent, TelemetrySink,
};
use moe_lightning::{NoopSink, Section};
use moe_workload::{ArrivalProcess, GenLens, Request, WorkloadSpec};
use std::sync::Arc;

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn evaluator() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model())
}

fn secs(s: f64) -> Seconds {
    Seconds::from_secs(s)
}

/// The fleet-dynamics churn regime: a 4-replica homogeneous T4 fleet under
/// online Poisson load with a mid-run failure, a provisioned join and a
/// drain — every availability counter has something to count.
fn churn_spec(mode: ServingMode, router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_count(300)
    .with_mixed_gen_lens()
    .with_seed(17)
    .with_mode(mode)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
    .with_timeline(
        FleetTimeline::new()
            .fail_at(secs(50.0), ReplicaId(1))
            .join_at(secs(60.0), ReplicaSpec::new(NodeSpec::t4_single()))
            .drain_at(secs(90.0), ReplicaId(0))
            .with_provisioning_delay(secs(20.0)),
    )
}

/// Counters vs report, one run: every aggregate the sink derives from the
/// event stream must equal what the report says happened.
fn assert_counters_reconcile(
    recorder: &Recorder,
    report: &moe_lightning::ClusterReport,
    label: &str,
) {
    let c = recorder.counters();
    let a = &report.availability;
    assert_eq!(
        c.arrivals,
        report.total_requests() as u64,
        "{label}: arrivals"
    );
    assert_eq!(
        c.completed,
        report.served_requests() as u64,
        "{label}: completed"
    );
    assert_eq!(
        c.rejected,
        report.rejected_requests() as u64,
        "{label}: rejected"
    );
    assert_eq!(
        c.aborted,
        report.aborted_requests() as u64,
        "{label}: aborted"
    );
    assert_eq!(
        c.completed_tokens, report.totals.generated_tokens,
        "{label}: completed tokens"
    );
    assert_eq!(c.rerouted, a.rerouted.len() as u64, "{label}: rerouted");
    assert_eq!(c.failures, a.failures.len() as u64, "{label}: failures");
    assert_eq!(c.drains, a.drains.len() as u64, "{label}: drains");
    assert_eq!(
        c.joins,
        a.joins.len() as u64 + a.cancelled_joins,
        "{label}: every provisioning transition either serves or is cancelled"
    );
}

/// Exactly-once terminal verdicts, across every built-in router in both
/// serving modes under churn: each request id appears in the event stream
/// with exactly one of completed / rejected / aborted, and the counter
/// summary reconciles with the report.
#[test]
fn counters_and_verdicts_reconcile_for_every_router_in_both_modes() {
    let eval = evaluator();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let label = format!("{name} [{mode}]");
            let recorder = Arc::new(Recorder::new());
            let spec = churn_spec(mode, router)
                .with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
            let report = eval.run(&spec).unwrap();
            assert_counters_reconcile(&recorder, &report, &label);
            let mut verdicts: Vec<u64> = recorder
                .events()
                .iter()
                .filter_map(|e| match *e {
                    TelemetryEvent::Completed { id, .. }
                    | TelemetryEvent::Rejected { id, .. }
                    | TelemetryEvent::Aborted { id, .. } => Some(id),
                    _ => None,
                })
                .collect();
            verdicts.sort_unstable();
            assert_eq!(
                verdicts,
                (0..300).collect::<Vec<u64>>(),
                "{label}: every request must get exactly one terminal verdict event"
            );
        }
    }
}

/// Attaching a sink never changes what the simulator computes: the report
/// with a recording sink (fine-grained sampling forces the extra
/// sample-boundary stepping), with the no-op sink, and with no sink at all
/// are bit-identical, in both serving modes.
#[test]
fn reports_are_bit_identical_with_and_without_a_sink() {
    let eval = evaluator();
    for mode in MODES {
        let spec = || churn_spec(mode, Arc::new(LeastOutstandingTokens));
        let bare = eval.run(&spec()).unwrap();
        let noop = eval
            .run(&spec().with_telemetry(Arc::new(NoopSink)))
            .unwrap();
        let recorder = Arc::new(Recorder::new().with_interval(5.0));
        let recorded = eval
            .run(&spec().with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>))
            .unwrap();
        assert_eq!(bare, noop, "[{mode}] no-op sink must not perturb the run");
        assert_eq!(
            bare, recorded,
            "[{mode}] recording sink must not perturb the run"
        );
        assert!(
            !recorder.series().is_empty(),
            "[{mode}] the recording run must actually have sampled"
        );
    }
}

/// Admission verdicts flow through the sink: under a hopeless SLO every
/// rejection the controller issues appears in the counters and the event
/// stream, and conservation still holds.
#[test]
fn admission_rejections_are_counted_exactly() {
    let slo = SloSpec {
        ttft: secs(20.0),
        per_token: secs(1e9),
    };
    let recorder = Arc::new(Recorder::new());
    let spec = churn_spec(ServingMode::Continuous, Arc::new(LeastOutstandingTokens))
        .with_slo(slo)
        .with_admission(Arc::new(SloAdmission::new(slo)))
        .with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
    let report = evaluator().run(&spec).unwrap();
    assert!(
        report.rejected_requests() > 0,
        "a 20s TTFT deadline under churn must shed something"
    );
    assert_counters_reconcile(&recorder, &report, "slo-admission");
}

/// Disaggregated prefill/decode fleets: every KV migration the loop starts
/// is eventually completed or lost, the in-flight gauge closes at zero, and
/// the counters reconcile.
#[test]
fn migration_counters_balance_on_a_disagg_fleet() {
    let node = NodeSpec::t4_single();
    let mut spec = ClusterSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
        .with_count(200)
        .with_mixed_gen_lens()
        .with_seed(29)
        .with_mode(ServingMode::Continuous)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 });
    for i in 0..4 {
        let role = if i < 2 {
            ReplicaRole::Prefill
        } else {
            ReplicaRole::Decode
        };
        spec = spec.with_replica(
            ReplicaSpec::new(node.clone())
                .with_policy(Policy::offload_default(64, 16))
                .with_role(role),
        );
    }
    let recorder = Arc::new(Recorder::new().with_interval(5.0));
    let report = evaluator()
        .run(&spec.with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>))
        .unwrap();
    let c = recorder.counters();
    assert!(
        c.migrations_started > 0,
        "a 2p+2d split must migrate KV for every prefill handoff"
    );
    assert_eq!(
        c.migrations_started,
        c.migrations_completed + c.migrations_lost,
        "every migration must settle"
    );
    let last = recorder.series().last().unwrap().clone();
    assert_eq!(last.migrations_in_flight, 0, "the closing sample drains");
    assert_counters_reconcile(&recorder, &report, "2p+2d");
}

/// Prefix caches under session-affine routing: the closing gauge sample's
/// fleet-wide cache statistics equal the per-replica stats in the report.
#[test]
fn closing_sample_reconciles_cache_stats() {
    let queue: Vec<Request> = WorkloadSpec::mtbench()
        .synthesize_queue(
            240,
            GenLens::Uniform(64),
            29,
            false,
            &ArrivalProcess::Poisson { rate_per_sec: 2.0 },
        )
        .into_iter()
        .map(|r| {
            let session = r.id / 8;
            r.with_session(session)
        })
        .collect();
    let recorder = Arc::new(Recorder::new().with_interval(5.0));
    let spec = ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_seed(29)
    .with_mode(ServingMode::Continuous)
    .with_queue(queue)
    .with_prefix_cache(64 * 1024)
    .with_router(Arc::new(StickySession::new(Arc::new(
        LeastOutstandingTokens,
    ))))
    .with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
    let report = evaluator().run(&spec).unwrap();
    let (hits, misses, hit_tokens) = report
        .replicas
        .iter()
        .map(|r| r.cache.expect("every replica carries a cache"))
        .fold((0, 0, 0), |(h, m, t), s| {
            (h + s.hits, m + s.misses, t + s.hit_tokens)
        });
    assert!(hits > 0, "an 8-turn session queue must produce prefix hits");
    let last = recorder.series().last().unwrap().clone();
    assert_eq!(last.cache_hits, hits, "closing sample: cache hits");
    assert_eq!(last.cache_misses, misses, "closing sample: cache misses");
    assert_eq!(
        last.cache_hit_tokens, hit_tokens,
        "closing sample: hit tokens"
    );
    assert_counters_reconcile(&recorder, &report, "prefix-cache");
}

/// Bounded rings shed oldest-first without corrupting the aggregates: a
/// tiny event/series capacity drops entries (and says so) while the counter
/// summary still reconciles exactly.
#[test]
fn ring_overflow_drops_events_but_never_counts() {
    let recorder = Arc::new(
        Recorder::new()
            .with_interval(1.0)
            .with_event_capacity(64)
            .with_series_capacity(16),
    );
    let spec = churn_spec(ServingMode::Continuous, Arc::new(LeastOutstandingTokens))
        .with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
    let report = evaluator().run(&spec).unwrap();
    assert!(
        recorder.events_dropped() > 0,
        "64 slots cannot hold a churn run"
    );
    assert!(recorder.events().len() <= 64);
    assert!(
        recorder.samples_dropped() > 0,
        "16 slots at 1s sampling overflow"
    );
    assert!(recorder.series().len() <= 16);
    assert_counters_reconcile(&recorder, &report, "bounded-rings");
}

/// Self-profiling spans cover every hot section when a sink is attached to
/// a continuous-mode fleet run.
#[test]
fn profiling_spans_cover_the_hot_sections() {
    let recorder = Arc::new(Recorder::new());
    let spec = churn_spec(ServingMode::Continuous, Arc::new(LeastOutstandingTokens))
        .with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>);
    evaluator().run(&spec).unwrap();
    let profile = recorder.profile();
    for section in Section::ALL {
        let (_, span) = profile
            .iter()
            .find(|(s, _)| *s == section)
            .expect("every section reports");
        assert!(
            span.calls > 0,
            "section {:?} must have been entered at least once",
            section.label()
        );
    }
}

/// Single-node serving sessions emit the same telemetry vocabulary: the
/// counters reconcile with the `ServingReport` and attaching the sink
/// leaves the report bit-identical.
#[test]
fn single_node_serving_reconciles_and_stays_identical() {
    let eval = SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model());
    let spec = || {
        ServeSpec::new(SystemKind::MoeLightning, WorkloadSpec::mtbench())
            .with_count(64)
            .with_gen_len(32)
            .with_seed(7)
            .with_policy(Policy::offload_default(64, 16))
            .with_mode(ServingMode::Continuous)
    };
    let bare = eval.run(&spec()).unwrap();
    let recorder = Arc::new(Recorder::new());
    let recorded = eval
        .run(&spec().with_telemetry(Arc::clone(&recorder) as Arc<dyn TelemetrySink>))
        .unwrap();
    assert_eq!(
        bare, recorded,
        "telemetry must not perturb single-node serving"
    );
    let c = recorder.counters();
    assert_eq!(c.completed, recorded.served_requests() as u64);
    assert_eq!(c.completed_tokens, recorded.totals.generated_tokens);
}
