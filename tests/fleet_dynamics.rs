//! End-to-end tests of the fleet dynamics control plane (ISSUE 5): churn
//! conservation for every router in both serving modes, drain semantics,
//! per-request round-to-completion callbacks, SLO admission control, and the
//! headline acceptance criterion — an `SloAttainmentScaler` recovering ≥ 90%
//! of the no-failure goodput after a mid-run replica loss on the pinned
//! seed-11 MTBench scenario, where a static fleet does not.

use moe_bench::fleet::FleetScenario;
use moe_lightning::{
    builtin_routers, ClusterEvaluator, ClusterReport, ClusterSpec, ClusterSpecError, EngineError,
    EvalSetting, FleetTimeline, NodeSpec, Policy, QueueDepthScaler, ReplicaId, ReplicaSpec,
    ReplicaView, Router, RouterCtx, ScaleBounds, Seconds, ServingMode, SloAdmission, SloSpec,
    SystemEvaluator, SystemKind,
};
use moe_workload::{ArrivalProcess, Request, WorkloadSpec};
use std::sync::{Arc, Mutex};

const MODES: [ServingMode; 2] = [ServingMode::RoundToCompletion, ServingMode::Continuous];

fn cluster_evaluator() -> ClusterEvaluator {
    ClusterEvaluator::new(EvalSetting::S1.model())
}

fn secs(s: f64) -> Seconds {
    Seconds::from_secs(s)
}

/// A 4-replica homogeneous T4 fleet under online Poisson load with mixed
/// generation lengths — the same regime as the PR-4 cluster tests, plus churn.
fn churn_scenario(mode: ServingMode, router: Arc<dyn Router>) -> ClusterSpec {
    ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        4,
    )
    .with_count(400)
    .with_mixed_gen_lens()
    .with_seed(17)
    .with_mode(mode)
    .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
    .with_router(router)
    .with_timeline(
        FleetTimeline::new()
            .fail_at(secs(50.0), ReplicaId(1))
            .join_at(secs(60.0), ReplicaSpec::new(NodeSpec::t4_single()))
            .drain_at(secs(90.0), ReplicaId(0))
            .with_provisioning_delay(secs(20.0)),
    )
}

/// Exactly-once accounting under churn: every synthesized request lands in
/// exactly one of served / aborted / rejected, for every built-in router in
/// both serving modes, with token accounting intact.
#[test]
fn churn_conserves_every_request_for_every_router_in_both_modes() {
    let eval = cluster_evaluator();
    for mode in MODES {
        for router in builtin_routers() {
            let name = router.name();
            let report = eval.run(&churn_scenario(mode, router)).unwrap();
            let mut ids: Vec<u64> = report
                .replicas
                .iter()
                .flat_map(|r| {
                    r.report
                        .latencies
                        .iter()
                        .map(|l| l.request.id)
                        .chain(r.report.aborted.iter().map(|req| req.id))
                })
                .chain(report.fleet_aborted.iter().map(|req| req.id))
                .chain(report.availability.rejected.iter().map(|req| req.id))
                .collect();
            ids.sort_unstable();
            assert_eq!(
                ids,
                (0..400).collect::<Vec<u64>>(),
                "{name} [{mode}]: completed + rejected + aborted must equal arrived, exactly once"
            );
            assert_eq!(report.total_requests(), 400, "{name} [{mode}]");
            // Generated-token accounting: only delivered tokens count.
            let generated: u64 = report
                .replicas
                .iter()
                .flat_map(|r| r.report.latencies.iter())
                .map(|l| l.request.gen_len)
                .sum();
            assert_eq!(
                report.totals.generated_tokens, generated,
                "{name} [{mode}]: unwound failures must not leave phantom tokens"
            );
            // The availability section records the injected events.
            let a = &report.availability;
            assert_eq!(
                a.failures,
                vec![(ReplicaId(1), secs(50.0))],
                "{name} [{mode}]"
            );
            assert_eq!(
                a.drains,
                vec![(ReplicaId(0), secs(90.0))],
                "{name} [{mode}]"
            );
            assert_eq!(
                a.joins,
                vec![(ReplicaId(4), secs(80.0))],
                "{name} [{mode}]: the join comes up after the 20 s provisioning delay"
            );
            assert!(
                !a.rerouted.is_empty(),
                "{name} [{mode}]: a mid-run failure must re-route in-flight work"
            );
            assert!(a.replica_seconds_lost > Seconds::ZERO, "{name} [{mode}]");
            // The joined replica actually served work.
            assert_eq!(report.replicas.len(), 5);
            assert!(
                report.replicas[4].report.served_requests() > 0,
                "{name} [{mode}]: the joined replica must take load"
            );
        }
    }
}

/// A drained replica admits nothing after its drain time: every round /
/// admission wave on it was formed before the drain, and its in-flight work
/// still finishes (drain, unlike failure, loses nothing).
#[test]
fn drained_replica_admits_nothing_after_its_drain_time() {
    let eval = cluster_evaluator();
    let drain_at = secs(40.0);
    for mode in MODES {
        let spec = ClusterSpec::homogeneous(
            SystemKind::MoeLightning,
            WorkloadSpec::mtbench(),
            &NodeSpec::t4_single(),
            2,
        )
        .with_count(300)
        .with_gen_len(64)
        .with_seed(23)
        .with_mode(mode)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 1.5 })
        .with_timeline(FleetTimeline::new().drain_at(drain_at, ReplicaId(0)));
        let report = eval.run(&spec).unwrap();
        let drained = &report.replicas[0];
        assert!(
            drained
                .report
                .rounds
                .iter()
                .all(|r| r.admitted_at <= drain_at),
            "[{mode}] replica 0 must form no round after its drain time: {:?}",
            drained
                .report
                .rounds
                .iter()
                .map(|r| r.admitted_at.as_secs())
                .collect::<Vec<_>>()
        );
        assert!(
            drained.report.served_requests() > 0,
            "[{mode}] in-flight work admitted before the drain still finishes"
        );
        assert_eq!(report.availability.drains, vec![(ReplicaId(0), drain_at)]);
        assert!(report.availability.failures.is_empty());
        // Conservation still holds.
        assert_eq!(report.total_requests(), 300, "[{mode}]");
        // After the drain, the whole queue lands on replica 1.
        let last_arrival = secs(300.0 / 1.5);
        assert!(
            report.replicas[1]
                .report
                .rounds
                .iter()
                .any(|r| r.admitted_at > drain_at && r.admitted_at <= last_arrival + secs(1e4)),
            "[{mode}] the surviving replica keeps admitting"
        );
    }
}

/// A router that records every callback the dispatch engine fires.
#[derive(Debug, Default)]
struct RecordingRouter {
    completions: Mutex<Vec<(u64, f64)>>,
    ups: Mutex<Vec<(usize, f64)>>,
    downs: Mutex<Vec<(usize, f64)>>,
}

impl Router for RecordingRouter {
    fn name(&self) -> &'static str {
        "recording"
    }

    fn route(
        &self,
        _request: &Request,
        replicas: &[ReplicaView],
        ctx: &mut RouterCtx,
    ) -> ReplicaId {
        replicas[(ctx.decision % replicas.len() as u64) as usize].id
    }

    fn on_complete(
        &self,
        request: &Request,
        _replica: ReplicaId,
        now: Seconds,
        _ctx: &mut RouterCtx,
    ) {
        self.completions
            .lock()
            .unwrap()
            .push((request.id, now.as_secs()));
    }

    fn on_replica_down(&self, replica: ReplicaId, now: Seconds, _ctx: &mut RouterCtx) {
        self.downs.lock().unwrap().push((replica.0, now.as_secs()));
    }

    fn on_replica_up(&self, replica: ReplicaId, now: Seconds, _ctx: &mut RouterCtx) {
        self.ups.lock().unwrap().push((replica.0, now.as_secs()));
    }
}

/// Round-to-completion replicas fire `on_complete` per request at its actual
/// completion step (ROADMAP item): within one round, short-generation requests
/// complete earlier than long ones instead of all at round retirement.
#[test]
fn rtc_completion_callbacks_fire_per_request_not_in_bulk() {
    let router = Arc::new(RecordingRouter::default());
    let eval = cluster_evaluator();
    let report = eval
        .run(
            &ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                1,
            )
            .with_count(64)
            .with_mixed_gen_lens()
            .with_seed(5)
            .with_mode(ServingMode::RoundToCompletion)
            .with_router(Arc::clone(&router) as Arc<dyn Router>),
        )
        .unwrap();
    let completions = router.completions.lock().unwrap();
    assert_eq!(
        completions.len(),
        report.served_requests(),
        "every served request fires exactly one completion callback"
    );
    // The first round mixes generation lengths, so its completions spread over
    // multiple distinct instants instead of one bulk retirement.
    let round0_ids: std::collections::HashSet<u64> = report.replicas[0]
        .report
        .latencies
        .iter()
        .filter(|l| l.round == 0)
        .map(|l| l.request.id)
        .collect();
    let mut round0_times: Vec<f64> = completions
        .iter()
        .filter(|(id, _)| round0_ids.contains(id))
        .map(|(_, t)| *t)
        .collect();
    round0_times.sort_by(f64::total_cmp);
    round0_times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    assert!(
        round0_times.len() > 1,
        "a mixed-gen round must complete its requests at distinct steps, got {round0_times:?}"
    );
}

/// Membership callbacks: the router hears every down (failure, finished
/// drain) and up (join past its provisioning delay).
#[test]
fn routers_hear_membership_changes() {
    let router = Arc::new(RecordingRouter::default());
    let eval = cluster_evaluator();
    let report = eval
        .run(
            &ClusterSpec::homogeneous(
                SystemKind::MoeLightning,
                WorkloadSpec::mtbench(),
                &NodeSpec::t4_single(),
                3,
            )
            .with_count(300)
            .with_gen_len(32)
            .with_seed(9)
            .with_mode(ServingMode::Continuous)
            .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
            .with_router(Arc::clone(&router) as Arc<dyn Router>)
            .with_timeline(
                FleetTimeline::new()
                    .fail_at(secs(30.0), ReplicaId(2))
                    .join_at(secs(40.0), ReplicaSpec::new(NodeSpec::t4_single()))
                    .with_provisioning_delay(secs(15.0)),
            ),
        )
        .unwrap();
    let ups = router.ups.lock().unwrap();
    let downs = router.downs.lock().unwrap();
    assert!(
        downs
            .iter()
            .any(|&(r, t)| r == 2 && (t - 30.0).abs() < 1e-9),
        "the failure must be announced: {downs:?}"
    );
    assert!(
        ups.iter().any(|&(r, t)| r == 3 && (t - 55.0).abs() < 1e-9),
        "the join must be announced once provisioned: {ups:?}"
    );
    assert_eq!(report.total_requests(), 300);
}

/// `SloAdmission` rejects arrivals whose projected TTFT already misses the
/// deadline, instead of queueing them: the overloaded fleet sheds exactly the
/// hopeless tail, and what it does serve meets the SLO far more often.
#[test]
fn slo_admission_rejects_hopeless_arrivals_under_overload() {
    let spec = WorkloadSpec::mtbench();
    let policy = Policy::offload_default(64, 16);
    let evaluator = SystemEvaluator::new(EvalSetting::S1.node(), EvalSetting::S1.model());
    let offline = evaluator
        .run(
            &moe_lightning::ServeSpec::new(SystemKind::MoeLightning, spec.clone())
                .with_count(300)
                .with_gen_len(64)
                .with_seed(11)
                .with_policy(policy)
                .with_mode(ServingMode::Continuous),
        )
        .unwrap();
    let rate = offline.served_requests() as f64 / offline.total_time().as_secs();
    let slo = SloSpec {
        ttft: offline.ttft().p50.scale(0.5),
        per_token: secs(1e9),
    };
    let eval = cluster_evaluator();
    let scenario = |admission: Option<SloAdmission>| {
        let mut s = ClusterSpec::new(SystemKind::MoeLightning, spec.clone())
            .with_replica(ReplicaSpec::new(NodeSpec::t4_single()).with_policy(policy))
            .with_count(400)
            .with_gen_len(64)
            .with_seed(11)
            .with_mode(ServingMode::Continuous)
            // 1.5x overload: the queue grows without bound.
            .with_arrivals(ArrivalProcess::Poisson {
                rate_per_sec: 1.5 * rate,
            })
            .with_slo(slo);
        if let Some(a) = admission {
            s = s.with_admission(Arc::new(a));
        }
        eval.run(&s).unwrap()
    };
    let open = scenario(None);
    let shed = scenario(Some(SloAdmission::new(slo)));
    assert!(open.availability.rejected.is_empty());
    assert!(
        shed.rejected_requests() > 0,
        "an overloaded fleet with SLO admission must reject something"
    );
    assert_eq!(open.total_requests(), 400);
    assert_eq!(shed.total_requests(), 400);
    // Shedding keeps the served tail honest: p99 TTFT of what was actually
    // served improves strictly.
    assert!(
        shed.ttft().p99 < open.ttft().p99,
        "admission control must cut the served TTFT tail: {:.1}s vs {:.1}s",
        shed.ttft().p99.as_secs(),
        open.ttft().p99.as_secs()
    );
}

/// Regression for the begin-drain view fix (ISSUE 9 satellite): a drain must
/// leave the drained replica's router-visible view coherent — admission
/// projections and routing after the drain run on recomputed queue state, so
/// an `SloAdmission`-gated run with a mid-run drain produces the identical
/// report on the indexed and scan loops, with conservation intact.
#[test]
fn slo_admission_with_a_drain_matches_across_loops() {
    let slo = SloSpec {
        ttft: secs(120.0),
        per_token: secs(1e9),
    };
    let spec = || {
        ClusterSpec::homogeneous(
            SystemKind::MoeLightning,
            WorkloadSpec::mtbench(),
            &NodeSpec::t4_single(),
            3,
        )
        .with_count(300)
        .with_gen_len(64)
        .with_seed(11)
        .with_mode(ServingMode::Continuous)
        .with_arrivals(ArrivalProcess::Poisson { rate_per_sec: 2.0 })
        .with_slo(slo)
        .with_admission(Arc::new(SloAdmission::new(slo)))
        .with_timeline(FleetTimeline::new().drain_at(secs(40.0), ReplicaId(1)))
    };
    let eval = cluster_evaluator();
    let scan = eval.clone().with_scan_loop();
    let want = scan.run(&spec()).unwrap();
    let got = eval.run(&spec()).unwrap();
    assert_eq!(want, got, "indexed and scan loops diverged after drain");
    assert_eq!(got.total_requests(), 300);
    assert_eq!(got.availability.drains, vec![(ReplicaId(1), secs(40.0))]);
}

/// Fleet-scaled arrivals on a *static* fleet reproduce the pre-scaled
/// stamping exactly; the spec-level axis only changes behaviour once the
/// fleet actually churns.
#[test]
fn fleet_scaled_arrivals_match_pre_scaled_stamping_on_a_static_fleet() {
    let eval = cluster_evaluator();
    let base = ArrivalProcess::Poisson { rate_per_sec: 0.6 };
    let build = || {
        ClusterSpec::homogeneous(
            SystemKind::MoeLightning,
            WorkloadSpec::mtbench(),
            &NodeSpec::t4_single(),
            4,
        )
        .with_count(200)
        .with_gen_len(32)
        .with_seed(31)
        .with_mode(ServingMode::Continuous)
    };
    let pre_scaled = eval.run(&build().with_arrivals(base.scaled(4.0))).unwrap();
    let dynamic = eval
        .run(&build().with_arrivals(base).with_fleet_scaled_arrivals())
        .unwrap();
    assert_eq!(pre_scaled.served_requests(), dynamic.served_requests());
    assert_eq!(
        pre_scaled.totals.generated_tokens,
        dynamic.totals.generated_tokens
    );
    assert!(
        (pre_scaled.fleet_throughput() - dynamic.fleet_throughput()).abs() < 1e-6,
        "a static fleet must see identical arrivals either way: {} vs {}",
        pre_scaled.fleet_throughput(),
        dynamic.fleet_throughput()
    );
}

/// Inverted autoscaler bounds surface as a typed spec error.
#[test]
fn invalid_scale_bounds_surface_as_typed_errors() {
    let eval = cluster_evaluator();
    let spec = ClusterSpec::homogeneous(
        SystemKind::MoeLightning,
        WorkloadSpec::mtbench(),
        &NodeSpec::t4_single(),
        2,
    )
    .with_autoscaler(
        Arc::new(QueueDepthScaler::new(8.0, 1.0)),
        ScaleBounds::new(4, 2, secs(10.0)),
    );
    let err = eval.run(&spec).unwrap_err();
    assert!(matches!(
        err,
        EngineError::InvalidClusterSpec {
            reason: ClusterSpecError::InvalidScaleBounds
        }
    ));
}

/// The acceptance criterion (ISSUE 5): on the pinned seed-11 MTBench
/// scenario, a 4-replica fleet losing one replica mid-run recovers ≥ 90% of
/// the no-failure goodput with an `SloAttainmentScaler`, while the same
/// failure on a static fleet does not. Reproduced by
/// `fig09_fleet_dynamics --json`.
#[test]
fn slo_attainment_scaler_recovers_goodput_a_static_fleet_cannot() {
    let scenario = FleetScenario::pinned(600).unwrap();
    let eval = cluster_evaluator();
    let goodput = |report: &ClusterReport| report.goodput(&scenario.slo);

    let baseline = eval.run(&scenario.base_spec()).unwrap();
    let static_failure = eval.run(&scenario.static_failure_spec()).unwrap();
    let autoscaled = eval.run(&scenario.autoscaled_failure_spec()).unwrap();

    let base = goodput(&baseline);
    assert!(base > 0.0);
    assert!(baseline.availability.is_quiet());

    let static_ratio = goodput(&static_failure) / base;
    let scaled_ratio = goodput(&autoscaled) / base;
    assert!(
        static_ratio < 0.9,
        "a static fleet must NOT recover 90% of the no-failure goodput after \
         losing a replica, got {:.1}%",
        100.0 * static_ratio
    );
    assert!(
        scaled_ratio >= 0.9,
        "the SloAttainmentScaler must recover >= 90% of the no-failure goodput, \
         got {:.1}%",
        100.0 * scaled_ratio
    );
    // The recovery came from real scale-ups, not accounting.
    assert_eq!(autoscaled.availability.failures.len(), 1);
    assert!(
        !autoscaled.availability.joins.is_empty(),
        "recovery requires the autoscaler to have provisioned replacements"
    );
    assert!(static_failure.availability.joins.is_empty());
    // Conservation under churn, both runs.
    assert_eq!(static_failure.total_requests(), 600);
    assert_eq!(autoscaled.total_requests(), 600);
}
