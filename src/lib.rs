//! Facade crate for the MoE-Lightning reproduction workspace.
//!
//! Re-exports the top-level engine crate as [`lightning`] plus the individual
//! substrate crates, so downstream users (and the workspace-level examples and
//! integration tests) can depend on a single package.

#![forbid(unsafe_code)]

pub use moe_hardware as hardware;
pub use moe_hrm as hrm;
pub use moe_lightning as lightning;
pub use moe_memory as memory;
pub use moe_model as model;
pub use moe_policy as policy;
pub use moe_runtime as runtime;
pub use moe_schedule as schedule;
pub use moe_sim as sim;
pub use moe_tensor as tensor;
pub use moe_workload as workload;
